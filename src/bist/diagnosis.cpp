#include "bist/diagnosis.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "bist/misr.hpp"
#include "bist/pattern_source.hpp"
#include "bist/reseeding.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::bist {

using sim::BitPattern;
using sim::PatternWord;
using sim::StuckAtFault;

SignatureDiagnosis::SignatureDiagnosis(
    const netlist::Netlist& netlist, StumpsConfig config,
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    std::size_t block_width)
    : netlist_(netlist),
      config_(config),
      num_random_(num_random),
      deterministic_(deterministic.begin(), deterministic.end()),
      block_width_(block_width) {
  const std::uint64_t total = num_random_ + deterministic_.size();
  window_ = config_.EffectiveWindow(total);
  window_count_ = static_cast<std::uint32_t>((total + window_ - 1) / window_);
  // Validate eagerly so a bad width fails at construction, not per query.
  sim::DispatchBlockWidth(block_width_, [](auto) {});
}

namespace {

/// Walks the session's pattern stream in blocks of <= `block_size` patterns,
/// invoking `visit(block, base_index)` for each block.
template <typename Visitor>
void ForEachPatternBlock(const netlist::Netlist& netlist,
                         const StumpsConfig& config, std::uint64_t num_random,
                         std::span<const EncodedPattern> deterministic,
                         std::size_t block_size, Visitor&& visit) {
  const std::size_t width = netlist.CoreInputs().size();
  ReseedingEncoder expander(static_cast<std::uint32_t>(width));
  PatternSource prpg(config, width);

  std::vector<BitPattern> block;
  block.reserve(block_size);
  std::uint64_t base = 0;
  std::size_t det_next = 0;
  auto flush = [&] {
    if (block.empty()) return;
    visit(std::span<const BitPattern>(block), base);
    base += block.size();
    block.clear();
  };
  for (std::uint64_t i = 0; i < num_random; ++i) {
    block.push_back(prpg.Next());
    if (block.size() == block_size) flush();
  }
  while (det_next < deterministic.size()) {
    block.push_back(expander.Expand(deterministic[det_next++]));
    if (block.size() == block_size) flush();
  }
  flush();
}

}  // namespace

std::vector<DiagnosisCandidate> SignatureDiagnosis::Diagnose(
    std::span<const FailDatum> fail_data,
    std::span<const StuckAtFault> candidates, std::size_t top_k) const {
  return sim::DispatchBlockWidth(block_width_, [&](auto width) {
    return DiagnoseT<width()>(fail_data, candidates, top_k);
  });
}

template <std::size_t W>
std::vector<DiagnosisCandidate> SignatureDiagnosis::DiagnoseT(
    std::span<const FailDatum> fail_data,
    std::span<const StuckAtFault> candidates, std::size_t top_k) const {
  using Word = sim::WideWord<W>;
  const std::size_t width = netlist_.CoreInputs().size();
  const std::size_t num_outputs = netlist_.CoreOutputs().size();
  sim::FaultSimulatorT<W> fsim(netlist_);

  // ---- Stage 1: failing-window set match ---------------------------------
  const std::size_t wwords = (window_count_ + 63) / 64;
  std::vector<std::vector<std::uint64_t>> predicted(
      candidates.size(), std::vector<std::uint64_t>(wwords, 0));

  ForEachPatternBlock(
      netlist_, config_, num_random_, deterministic_, W * 64,
      [&](std::span<const BitPattern> block, std::uint64_t base) {
        fsim.SetPatternBlock(
            sim::PackPatternBlockWide(block, 0, block.size(), width, W));
        const Word mask = sim::BlockMaskWide<W>(block.size());
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          const Word det = fsim.DetectBlock(candidates[c]) & mask;
          for (std::size_t l = 0; l < W; ++l) {
            PatternWord dl = det.lane[l];
            while (dl != 0) {
              const int k = std::countr_zero(dl);
              dl &= dl - 1;
              const std::uint64_t w =
                  (base + l * 64 + static_cast<std::uint64_t>(k)) / window_;
              predicted[c][w / 64] |= std::uint64_t{1} << (w % 64);
            }
          }
        }
      });

  std::vector<std::uint64_t> observed(wwords, 0);
  for (const FailDatum& f : fail_data) {
    observed[f.window_index / 64] |= std::uint64_t{1} << (f.window_index % 64);
  }

  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::uint64_t inter = 0, uni = 0;
    for (std::size_t w = 0; w < wwords; ++w) {
      inter += std::popcount(predicted[c][w] & observed[w]);
      uni += std::popcount(predicted[c][w] | observed[w]);
    }
    const double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
    ranked.push_back({candidates[c], score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });

  // ---- Stage 2: signature match on failing windows -----------------------
  // Window sets alone cannot separate faults failing (nearly) every window;
  // the observed MISR signatures can. Re-rank the short list by reproducing
  // the signatures of a few failing windows per candidate. Requires strong
  // windows (per-window MISR reset) so windows are independent.
  if (!fail_data.empty() && config_.reset_misr_per_window && !ranked.empty()) {
    // Tie-aware shortlist: extend past the nominal cut while stage-1 scores
    // tie, so equal-scoring candidates all get the signature test.
    std::size_t shortlist =
        std::min(ranked.size(), std::max<std::size_t>(top_k * 8, 32));
    while (shortlist < ranked.size() &&
           ranked[shortlist].score == ranked[shortlist - 1].score) {
      ++shortlist;
    }
    constexpr std::size_t kMaxWindows = 8;
    std::vector<const FailDatum*> selected;
    for (const FailDatum& f : fail_data) {
      selected.push_back(&f);
      if (selected.size() >= kMaxWindows) break;
    }

    // Collect the patterns of the selected windows.
    std::map<std::uint32_t, std::vector<BitPattern>> window_patterns;
    for (const FailDatum* f : selected) window_patterns[f->window_index] = {};
    ForEachPatternBlock(
        netlist_, config_, num_random_, deterministic_, W * 64,
        [&](std::span<const BitPattern> block, std::uint64_t base) {
          for (std::size_t k = 0; k < block.size(); ++k) {
            const auto w = static_cast<std::uint32_t>((base + k) / window_);
            auto it = window_patterns.find(w);
            if (it != window_patterns.end()) it->second.push_back(block[k]);
          }
        });

    // Per candidate and selected window, reproduce the window signature.
    // Loop order is window-major so each pattern block is good-simulated
    // once for all shortlist candidates; lanes absorb in block-then-lane
    // order, i.e. exactly the serial pattern order.
    std::vector<std::vector<Misr>> misrs(
        shortlist,
        std::vector<Misr>(selected.size(), Misr(config_.misr_width)));
    for (std::size_t wi = 0; wi < selected.size(); ++wi) {
      const auto& pats = window_patterns.at(selected[wi]->window_index);
      for (std::size_t base = 0; base < pats.size(); base += W * 64) {
        const std::size_t count =
            std::min<std::size_t>(W * 64, pats.size() - base);
        fsim.SetPatternBlock(
            sim::PackPatternBlockWide(pats, base, count, width, W));
        for (std::size_t r = 0; r < shortlist; ++r) {
          const auto response = fsim.FaultyResponse(ranked[r].fault);
          for (std::size_t l = 0; l < W; ++l) {
            const std::size_t lane_count = sim::LanePatternCount(count, l);
            for (std::size_t k = 0; k < lane_count; ++k) {
              for (std::size_t j = 0; j < num_outputs; ++j) {
                misrs[r][wi].AbsorbBit((response[j * W + l] >> k) & 1);
              }
            }
          }
        }
      }
    }
    for (std::size_t r = 0; r < shortlist; ++r) {
      std::size_t matches = 0;
      for (std::size_t wi = 0; wi < selected.size(); ++wi) {
        if (misrs[r][wi].Signature() == selected[wi]->observed_signature)
          ++matches;
      }
      // Signature evidence dominates ties: exact reproduction of the
      // observed failing signatures is the strongest possible match.
      ranked[r].score +=
          static_cast<double>(matches) / static_cast<double>(selected.size());
    }
    std::stable_sort(
        ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(shortlist),
        [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
          return a.score > b.score;
        });
  }

  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace bistdse::bist
