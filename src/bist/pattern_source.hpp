// The pseudo-random pattern source of a BIST session: a PRPG LFSR, fed
// either directly into the scan stream or through the phase shifter
// (StumpsConfig::use_phase_shifter). Every module that replays a session's
// stream (session engine, profile generator, diagnosis) constructs its
// source from the same StumpsConfig, so all replays are consistent by
// construction.
#pragma once

#include <cstddef>
#include <optional>

#include "bist/phase_shifter.hpp"
#include "bist/stumps.hpp"

namespace bistdse::bist {

class PatternSource {
 public:
  PatternSource(const StumpsConfig& config, std::size_t width)
      : width_(width),
        lfsr_(Lfsr::DefaultPolynomial(config.prpg_degree), config.prpg_seed) {
    if (config.use_phase_shifter) {
      shifter_.emplace(config.num_scan_chains, config.prpg_degree,
                       config.phase_shifter_seed);
    }
  }

  /// Next pseudo-random test pattern.
  sim::BitPattern Next() {
    return shifter_ ? shifter_->EmitPattern(lfsr_, width_)
                    : lfsr_.Emit(width_);
  }

 private:
  std::size_t width_;
  Lfsr lfsr_;
  std::optional<PhaseShifter> shifter_;
};

}  // namespace bistdse::bist
