#include "casestudy/casestudy.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "util/rng.hpp"

namespace bistdse::casestudy {

using model::Message;
using model::ResourceId;
using model::ResourceKind;
using model::Task;
using model::TaskId;
using model::TaskKind;

std::vector<bist::BistProfile> PaperTableI() {
  // profile, #PRPs, c(b) [%], l(b) [ms], s(b) [Bytes] — Table I, verbatim.
  struct Row {
    std::uint32_t n;
    std::uint64_t prps;
    double c, l;
    std::uint64_t s;
  };
  static constexpr std::array<Row, 36> kRows = {{
      {1, 500, 99.83, 4.87, 2399185},    {2, 500, 99.84, 4.87, 2401554},
      {3, 500, 98.17, 2.81, 994156},     {4, 500, 95.73, 1.71, 455061},
      {5, 1000, 99.84, 5.79, 2370883},   {6, 1000, 99.84, 5.74, 2340080},
      {7, 1000, 98.15, 3.66, 918895},    {8, 1000, 96.13, 2.67, 455193},
      {9, 5000, 99.87, 13.37, 2300488},  {10, 5000, 99.87, 13.31, 2263762},
      {11, 5000, 98.21, 11.23, 772886},  {12, 5000, 95.61, 10.25, 311258},
      {13, 10000, 99.87, 22.93, 2261705}, {14, 10000, 99.87, 22.85, 2210762},
      {15, 10000, 98.06, 20.61, 834119}, {16, 10000, 95.97, 19.75, 304549},
      {17, 20000, 99.88, 42.11, 2216126}, {18, 20000, 99.88, 42.05, 2180585},
      {19, 20000, 97.62, 39.74, 757737}, {20, 20000, 95.16, 38.88, 229353},
      {21, 50000, 99.87, 99.59, 2054510}, {22, 50000, 99.87, 99.53, 2018968},
      {23, 50000, 97.93, 97.24, 610337}, {24, 50000, 96.11, 96.63, 231227},
      {25, 100000, 99.87, 195.84, 2054081},
      {26, 100000, 99.87, 195.74, 1994845},
      {27, 100000, 98.10, 193.49, 611093},
      {28, 100000, 95.36, 192.76, 158531},
      {29, 200000, 99.89, 388.06, 1888552},
      {30, 200000, 99.89, 387.99, 1843533},
      {31, 200000, 98.13, 385.87, 540342},
      {32, 200000, 95.99, 385.26, 162417},
      {33, 500000, 99.89, 965.35, 1767609},
      {34, 500000, 99.89, 965.31, 1741544},
      {35, 500000, 98.28, 963.25, 475080},
      {36, 500000, 96.69, 962.76, 171792},
  }};
  std::vector<bist::BistProfile> profiles;
  profiles.reserve(kRows.size());
  for (const Row& r : kRows) {
    bist::BistProfile p;
    p.profile_number = r.n;
    p.num_random_patterns = r.prps;
    p.fault_coverage_percent = r.c;
    p.runtime_ms = r.l;
    p.data_bytes = r.s;
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<bist::BistProfile> ScaledTableI(double data_scale,
                                            std::size_t count) {
  auto profiles = PaperTableI();
  if (count < profiles.size()) profiles.resize(count);
  for (bist::BistProfile& p : profiles) {
    p.data_bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(p.data_bytes) * data_scale));
  }
  return profiles;
}

bist::StumpsConfig PaperStumpsConfig() {
  bist::StumpsConfig cfg;
  cfg.num_scan_chains = 100;
  cfg.max_chain_length = 77;
  cfg.test_frequency_hz = 40e6;
  cfg.signature_window = 32;
  cfg.prpg_degree = 32;
  return cfg;
}

netlist::RandomCircuitSpec ScaledCutSpec(std::uint64_t seed) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 32;
  spec.num_outputs = 32;
  spec.num_flops = 320;   // ~1/24 of the paper CUT's scan length budget
  spec.num_gates = 3000;
  spec.num_hard_blocks = 10;
  spec.hard_block_width = 12;
  spec.seed = seed;
  return spec;
}


namespace {

struct AppShape {
  const char* name;
  int home_bus;
  std::vector<int> sensors;    // indices into cs.sensors
  std::vector<int> actuators;  // indices into cs.actuators
  int processing;
};

/// Adds sensor->processing-chain->actuator control applications (one tree
/// per shape: tasks - 1 messages) with 2-3 ECU mapping options per
/// processing task (occasionally one cross-bus option, so some messages
/// route through the gateway).
void BuildControlApps(CaseStudy& cs, const std::vector<AppShape>& shapes,
                      int ecus_per_bus, int num_buses,
                      util::SplitMix64& rng) {
  model::ApplicationGraph& app = cs.spec.Application();
  const std::array<std::uint32_t, 4> payloads = {1, 2, 4, 8};
  const std::array<double, 5> periods = {5, 10, 20, 50, 100};
  auto message_params = [&](Message& m) {
    m.payload_bytes = payloads[rng.Below(payloads.size())];
    m.period_ms = periods[rng.Below(periods.size())];
  };

  for (const AppShape& shape : shapes) {
    std::vector<TaskId> sense_tasks;
    for (int s : shape.sensors) {
      Task t;
      t.name = std::string(shape.name) + ".sense" + std::to_string(s);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      cs.spec.AddMapping(id, cs.sensors[s]);
      sense_tasks.push_back(id);
      ++cs.functional_task_count;
    }

    std::vector<TaskId> proc_tasks;
    for (int p = 0; p < shape.processing; ++p) {
      Task t;
      t.name = std::string(shape.name) + ".proc" + std::to_string(p);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      const int base = shape.home_bus * ecus_per_bus;
      const int o1 = base + static_cast<int>(rng.Below(ecus_per_bus));
      int o2 = base + static_cast<int>(rng.Below(ecus_per_bus));
      while (o2 == o1) o2 = base + static_cast<int>(rng.Below(ecus_per_bus));
      cs.spec.AddMapping(id, cs.ecus[o1]);
      cs.spec.AddMapping(id, cs.ecus[o2]);
      if (rng.Chance(0.3)) {
        const int other_bus =
            (shape.home_bus + 1 + static_cast<int>(rng.Below(num_buses - 1))) %
            num_buses;
        cs.spec.AddMapping(
            id, cs.ecus[other_bus * ecus_per_bus + rng.Below(ecus_per_bus)]);
      }
      proc_tasks.push_back(id);
      ++cs.functional_task_count;
    }

    std::vector<TaskId> act_tasks;
    for (int a : shape.actuators) {
      Task t;
      t.name = std::string(shape.name) + ".act" + std::to_string(a);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      cs.spec.AddMapping(id, cs.actuators[a]);
      act_tasks.push_back(id);
      ++cs.functional_task_count;
    }

    // Tree edges: sensors -> proc[0], proc chain, proc[last] -> actuators.
    for (TaskId s : sense_tasks) {
      Message m;
      m.name = app.GetTask(s).name + ">";
      m.sender = s;
      m.receivers = {proc_tasks.front()};
      message_params(m);
      app.AddMessage(m);
      ++cs.functional_message_count;
    }
    for (std::size_t p = 0; p + 1 < proc_tasks.size(); ++p) {
      Message m;
      m.name = app.GetTask(proc_tasks[p]).name + ">";
      m.sender = proc_tasks[p];
      m.receivers = {proc_tasks[p + 1]};
      message_params(m);
      app.AddMessage(m);
      ++cs.functional_message_count;
    }
    for (TaskId a : act_tasks) {
      Message m;
      m.name =
          app.GetTask(proc_tasks.back()).name + ">" + app.GetTask(a).name;
      m.sender = proc_tasks.back();
      m.receivers = {a};
      message_params(m);
      app.AddMessage(m);
      ++cs.functional_message_count;
    }
  }
}

}  // namespace

CaseStudy BuildCaseStudy(const std::vector<bist::BistProfile>& profiles,
                         std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  CaseStudy cs;
  auto& arch = cs.spec.Architecture();

  // --- architecture: 3 CAN buses, gateway, 15 ECUs, 9 sensors, 5 actuators.
  cs.gateway = arch.AddResource(
      {"gateway", ResourceKind::Gateway, 25.0, 1e-6, 0.0});
  for (int b = 0; b < 3; ++b) {
    const ResourceId bus = arch.AddResource(
        {"can" + std::to_string(b), ResourceKind::Bus, 1.0, 0.0, 500e3});
    arch.AddLink(bus, cs.gateway);
    cs.buses.push_back(bus);
  }
  for (int e = 0; e < 15; ++e) {
    const ResourceId ecu = arch.AddResource(
        {"ecu" + std::to_string(e), ResourceKind::Ecu,
         12.0 + 2.0 * (e % 5), 2e-5, 0.0});
    arch.AddLink(ecu, cs.buses[e / 5]);  // 5 ECUs per bus
    cs.ecus.push_back(ecu);
  }
  // Sensors per bus: 5 on can0 (apps 0 and 3), 2 on can1, 2 on can2.
  const std::array<int, 9> sensor_bus = {0, 0, 0, 1, 1, 2, 2, 0, 0};
  for (int s = 0; s < 9; ++s) {
    const ResourceId sensor = arch.AddResource(
        {"sensor" + std::to_string(s), ResourceKind::Sensor, 2.0, 0.0, 0.0});
    arch.AddLink(sensor, cs.buses[sensor_bus[s]]);
    cs.sensors.push_back(sensor);
  }
  const std::array<int, 5> actuator_bus = {0, 0, 1, 2, 0};
  for (int a = 0; a < 5; ++a) {
    const ResourceId actuator = arch.AddResource(
        {"actuator" + std::to_string(a), ResourceKind::Actuator, 3.0, 0.0,
         0.0});
    arch.AddLink(actuator, cs.buses[actuator_bus[a]]);
    cs.actuators.push_back(actuator);
  }

  // --- applications: 4 control chains, 45 tasks / 41 messages total.
  const std::vector<AppShape> shapes = {
      {"engine", 0, {0, 1, 2}, {0, 1}, 8},
      {"chassis", 1, {3, 4}, {2}, 8},
      {"body", 2, {5, 6}, {3}, 8},
      {"comfort", 0, {7, 8}, {4}, 7},
  };
  BuildControlApps(cs, shapes, /*ecus_per_bus=*/5, /*num_buses=*/3, rng);

  if (cs.functional_task_count != 45 || cs.functional_message_count != 41) {
    throw std::logic_error("case study counts drifted from the paper");
  }

  // --- BIST augmentation: every ECU carries the profile set.
  std::map<ResourceId, std::vector<bist::BistProfile>> by_ecu;
  for (ResourceId ecu : cs.ecus) by_ecu[ecu] = profiles;
  cs.augmentation = model::AugmentWithBist(cs.spec, by_ecu);
  cs.spec.Validate();
  return cs;
}


CaseStudy BuildFutureCaseStudy(const std::vector<bist::BistProfile>& gen0,
                               std::vector<bist::BistProfile> gen1,
                               std::uint64_t seed) {
  if (gen1.empty()) {
    // Default second generation: a larger die of the same family — x3
    // pattern data, x2.5 session time, slightly higher ceiling coverage.
    gen1 = gen0;
    for (auto& p : gen1) {
      p.data_bytes *= 3;
      p.runtime_ms *= 2.5;
      p.fault_coverage_percent =
          std::min(99.95, p.fault_coverage_percent + 0.03);
    }
  }

  util::SplitMix64 rng(seed);
  CaseStudy cs;
  auto& arch = cs.spec.Architecture();

  cs.gateway =
      arch.AddResource({"gateway", ResourceKind::Gateway, 40.0, 1e-6, 0.0});
  for (int b = 0; b < 4; ++b) {
    // can3 is the high-speed backbone segment.
    const double bitrate = b == 3 ? 1e6 : 500e3;
    const ResourceId bus = arch.AddResource(
        {"can" + std::to_string(b), ResourceKind::Bus, 1.0, 0.0, bitrate});
    arch.AddLink(bus, cs.gateway);
    cs.buses.push_back(bus);
  }
  for (int e = 0; e < 20; ++e) {
    const ResourceId ecu = arch.AddResource(
        {"ecu" + std::to_string(e), ResourceKind::Ecu,
         11.0 + 2.0 * (e % 5), 2e-5, 0.0});
    arch.AddLink(ecu, cs.buses[e / 5]);
    cs.ecus.push_back(ecu);
    cs.cut_type_by_ecu[ecu] = e < 10 ? 0u : 1u;  // two silicon generations
  }
  const std::array<int, 12> sensor_bus = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3};
  for (int s = 0; s < 12; ++s) {
    const ResourceId sensor = arch.AddResource(
        {"sensor" + std::to_string(s), ResourceKind::Sensor, 2.0, 0.0, 0.0});
    arch.AddLink(sensor, cs.buses[sensor_bus[s]]);
    cs.sensors.push_back(sensor);
  }
  const std::array<int, 8> actuator_bus = {0, 0, 1, 1, 1, 2, 2, 3};
  for (int a = 0; a < 8; ++a) {
    const ResourceId actuator = arch.AddResource(
        {"actuator" + std::to_string(a), ResourceKind::Actuator, 3.0, 0.0,
         0.0});
    arch.AddLink(actuator, cs.buses[actuator_bus[a]]);
    cs.actuators.push_back(actuator);
  }

  const std::vector<AppShape> shapes = {
      {"powertrain", 0, {0, 1}, {0}, 6},
      {"transmission", 0, {2, 3}, {1}, 6},
      {"chassis", 1, {4, 5}, {2, 3}, 7},
      {"steering", 1, {6, 7}, {4}, 6},
      {"body", 2, {8, 9}, {5, 6}, 7},
      {"adas", 3, {10, 11}, {7}, 6},
  };
  BuildControlApps(cs, shapes, /*ecus_per_bus=*/5, /*num_buses=*/4, rng);

  std::map<ResourceId, std::vector<bist::BistProfile>> by_ecu;
  for (ResourceId ecu : cs.ecus) {
    by_ecu[ecu] = cs.cut_type_by_ecu[ecu] == 0 ? gen0 : gen1;
  }
  cs.augmentation = model::AugmentWithBist(cs.spec, by_ecu, cs.cut_type_by_ecu);
  cs.spec.Validate();
  return cs;
}

double BaselineCost(std::uint64_t seed) {
  // Diagnosis-free reference: the same subnet with an empty profile set has
  // no diagnosis genes at all; sample functional bindings deterministically
  // and keep the cheapest.
  CaseStudy base = BuildCaseStudy({}, seed);
  dse::SatDecoder decoder(base.spec, base.augmentation);
  util::SplitMix64 rng(7);
  double best = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 200; ++trial) {
    auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    const auto impl = decoder.Decode(genotype);
    if (!impl) continue;
    const auto obj =
        dse::EvaluateImplementation(base.spec, base.augmentation, *impl);
    best = std::min(best, obj.monetary_cost);
  }
  return best;
}

}  // namespace bistdse::casestudy
