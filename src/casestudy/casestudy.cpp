#include "casestudy/casestudy.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "util/rng.hpp"

namespace bistdse::casestudy {

std::vector<bist::BistProfile> PaperTableI() {
  // profile, #PRPs, c(b) [%], l(b) [ms], s(b) [Bytes] — Table I, verbatim.
  struct Row {
    std::uint32_t n;
    std::uint64_t prps;
    double c, l;
    std::uint64_t s;
  };
  static constexpr std::array<Row, 36> kRows = {{
      {1, 500, 99.83, 4.87, 2399185},    {2, 500, 99.84, 4.87, 2401554},
      {3, 500, 98.17, 2.81, 994156},     {4, 500, 95.73, 1.71, 455061},
      {5, 1000, 99.84, 5.79, 2370883},   {6, 1000, 99.84, 5.74, 2340080},
      {7, 1000, 98.15, 3.66, 918895},    {8, 1000, 96.13, 2.67, 455193},
      {9, 5000, 99.87, 13.37, 2300488},  {10, 5000, 99.87, 13.31, 2263762},
      {11, 5000, 98.21, 11.23, 772886},  {12, 5000, 95.61, 10.25, 311258},
      {13, 10000, 99.87, 22.93, 2261705}, {14, 10000, 99.87, 22.85, 2210762},
      {15, 10000, 98.06, 20.61, 834119}, {16, 10000, 95.97, 19.75, 304549},
      {17, 20000, 99.88, 42.11, 2216126}, {18, 20000, 99.88, 42.05, 2180585},
      {19, 20000, 97.62, 39.74, 757737}, {20, 20000, 95.16, 38.88, 229353},
      {21, 50000, 99.87, 99.59, 2054510}, {22, 50000, 99.87, 99.53, 2018968},
      {23, 50000, 97.93, 97.24, 610337}, {24, 50000, 96.11, 96.63, 231227},
      {25, 100000, 99.87, 195.84, 2054081},
      {26, 100000, 99.87, 195.74, 1994845},
      {27, 100000, 98.10, 193.49, 611093},
      {28, 100000, 95.36, 192.76, 158531},
      {29, 200000, 99.89, 388.06, 1888552},
      {30, 200000, 99.89, 387.99, 1843533},
      {31, 200000, 98.13, 385.87, 540342},
      {32, 200000, 95.99, 385.26, 162417},
      {33, 500000, 99.89, 965.35, 1767609},
      {34, 500000, 99.89, 965.31, 1741544},
      {35, 500000, 98.28, 963.25, 475080},
      {36, 500000, 96.69, 962.76, 171792},
  }};
  std::vector<bist::BistProfile> profiles;
  profiles.reserve(kRows.size());
  for (const Row& r : kRows) {
    bist::BistProfile p;
    p.profile_number = r.n;
    p.num_random_patterns = r.prps;
    p.fault_coverage_percent = r.c;
    p.runtime_ms = r.l;
    p.data_bytes = r.s;
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<bist::BistProfile> ScaledTableI(double data_scale,
                                            std::size_t count) {
  auto profiles = PaperTableI();
  if (count < profiles.size()) profiles.resize(count);
  for (bist::BistProfile& p : profiles) {
    p.data_bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(p.data_bytes) * data_scale));
  }
  return profiles;
}

bist::StumpsConfig PaperStumpsConfig() {
  bist::StumpsConfig cfg;
  cfg.num_scan_chains = 100;
  cfg.max_chain_length = 77;
  cfg.test_frequency_hz = 40e6;
  cfg.signature_window = 32;
  cfg.prpg_degree = 32;
  return cfg;
}

netlist::RandomCircuitSpec ScaledCutSpec(std::uint64_t seed) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 32;
  spec.num_outputs = 32;
  spec.num_flops = 320;   // ~1/24 of the paper CUT's scan length budget
  spec.num_gates = 3000;
  spec.num_hard_blocks = 10;
  spec.hard_block_width = 12;
  spec.seed = seed;
  return spec;
}

namespace {

/// Table I, materialized once per process for the defaulted builders.
const std::vector<bist::BistProfile>& CachedTableI() {
  static const std::vector<bist::BistProfile> kTable = PaperTableI();
  return kTable;
}

}  // namespace

arch::TopologySpec CaseStudySpec(
    const std::vector<bist::BistProfile>& profiles) {
  arch::TopologySpec spec;
  spec.name = "paper-subnet";
  // 3 CAN buses, gateway, 15 ECUs (5 per bus), 9 sensors, 5 actuators.
  spec.num_ecus = 15;
  spec.buses = {{}, {}, {}};
  spec.num_sensors = 9;
  spec.num_actuators = 5;
  // Sensors per bus: 5 on can0 (apps 0 and 3), 2 on can1, 2 on can2.
  spec.sensor_bus = {0, 0, 0, 1, 1, 2, 2, 0, 0};
  spec.actuator_bus = {0, 0, 1, 2, 0};
  // 4 control chains, 45 tasks / 41 messages total.
  spec.chains = {
      {"engine", 0, {0, 1, 2}, {0, 1}, 8},
      {"chassis", 1, {3, 4}, {2}, 8},
      {"body", 2, {5, 6}, {3}, 8},
      {"comfort", 0, {7, 8}, {4}, 7},
  };
  spec.profile_sets = {profiles};  // every ECU carries the full set
  return spec;
}

CaseStudy BuildCaseStudy(const std::vector<bist::BistProfile>& profiles,
                         std::uint64_t seed) {
  CaseStudy cs = arch::GenerateTopology(CaseStudySpec(profiles), seed);
  if (cs.functional_task_count != 45 || cs.functional_message_count != 41) {
    throw std::logic_error("case study counts drifted from the paper");
  }
  return cs;
}

CaseStudy BuildCaseStudy(std::uint64_t seed) {
  return BuildCaseStudy(CachedTableI(), seed);
}

arch::TopologySpec FutureCaseStudySpec(
    const std::vector<bist::BistProfile>& gen0,
    std::vector<bist::BistProfile> gen1) {
  if (gen1.empty()) gen1 = arch::NextGenerationProfiles(gen0);

  arch::TopologySpec spec;
  spec.name = "future-subnet";
  spec.num_ecus = 20;
  spec.buses = {{}, {}, {}, {}};
  spec.buses[3].bitrate_bps = 1e6;  // high-speed backbone segment
  spec.gateway_base_cost = 40.0;
  spec.ecu_base_cost = 11.0;
  spec.num_sensors = 12;
  spec.num_actuators = 8;
  spec.sensor_bus = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3};
  spec.actuator_bus = {0, 0, 1, 1, 1, 2, 2, 3};
  spec.chains = {
      {"powertrain", 0, {0, 1}, {0}, 6},
      {"transmission", 0, {2, 3}, {1}, 6},
      {"chassis", 1, {4, 5}, {2, 3}, 7},
      {"steering", 1, {6, 7}, {4}, 6},
      {"body", 2, {8, 9}, {5, 6}, 7},
      {"adas", 3, {10, 11}, {7}, 6},
  };
  // Two silicon generations in contiguous blocks: ECUs 0-9 are gen 0,
  // 10-19 gen 1. Gateway pattern memory is shared only within a generation.
  spec.profile_sets = {gen0, std::move(gen1)};
  return spec;
}

CaseStudy BuildFutureCaseStudy(const std::vector<bist::BistProfile>& gen0,
                               std::vector<bist::BistProfile> gen1,
                               std::uint64_t seed) {
  return arch::GenerateTopology(FutureCaseStudySpec(gen0, std::move(gen1)),
                                seed);
}

CaseStudy BuildFutureCaseStudy(std::uint64_t seed) {
  return BuildFutureCaseStudy(CachedTableI(), {}, seed);
}

double BaselineCost(std::uint64_t seed) {
  // Diagnosis-free reference: the same subnet with an empty profile set has
  // no diagnosis genes at all; sample functional bindings deterministically
  // and keep the cheapest.
  CaseStudy base = BuildCaseStudy({}, seed);
  dse::SatDecoder decoder(base.spec, base.augmentation);
  util::SplitMix64 rng(7);
  double best = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 200; ++trial) {
    auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    const auto impl = decoder.Decode(genotype);
    if (!impl) continue;
    const auto obj =
        dse::EvaluateImplementation(base.spec, base.augmentation, *impl);
    best = std::min(best, obj.monetary_cost);
  }
  return best;
}

}  // namespace bistdse::casestudy
