// The industrial case study of paper §IV: an automotive E/E-architecture
// subnet with 4 control applications (45 tasks, 41 messages), 15 ECUs,
// 9 sensors, 5 actuators on 3 CAN buses bridged by a central gateway, and
// 36 BIST profiles per ECU (Table I).
//
// Both case studies are canonical arch::TopologySpecs run through
// arch::GenerateTopology — the same generator that samples the corpus
// families (arch/corpus.hpp). Their construction is pinned bit-identical to
// the historical hand-built graphs by content hashes and Pareto-front
// fingerprints in tests/test_casestudy.cpp / test_future_casestudy.cpp /
// test_arch.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/topology.hpp"
#include "bist/profile.hpp"
#include "bist/stumps.hpp"
#include "netlist/random_circuit.hpp"

namespace bistdse::casestudy {

/// Table I of the paper, verbatim: 36 mixed-mode BIST profiles of the
/// Infineon automotive microprocessor CUT (371,900 collapsed faults,
/// 100 scan chains, max length 77, 40 MHz).
std::vector<bist::BistProfile> PaperTableI();

/// Table I with every pattern-data size scaled by `data_scale` (runtime and
/// coverage untouched), truncated to the first `count` profiles. The
/// frame-accurate session executor uses this to keep full-subnet simulations
/// fast while preserving the profiles' relative shape; data_scale = 1 is
/// Table I itself.
std::vector<bist::BistProfile> ScaledTableI(double data_scale,
                                            std::size_t count = 36);

/// Number of collapsed faults of the paper's CUT.
inline constexpr std::uint64_t kPaperCollapsedFaults = 371900;

/// STUMPS configuration matching the paper's CUT (100 chains x <= 77 cells,
/// 40 MHz).
bist::StumpsConfig PaperStumpsConfig();

/// Scaled-down synthetic stand-in for the paper's CUT: same scan geometry
/// ratio and testability profile (random-pattern-testable bulk + decoder
/// blocks needing deterministic top-up), sized so that profiling all
/// 36 Table-I configurations stays laptop-feasible.
netlist::RandomCircuitSpec ScaledCutSpec(std::uint64_t seed = 1);

/// The case-study handle is the generator's topology bundle: specification,
/// augmentation, and every resource id downstream layers consume.
using CaseStudy = arch::Topology;

/// The canonical TopologySpec of the paper subnet, carrying `profiles` on
/// every ECU. Exposed so corpus tooling can perturb the paper family.
arch::TopologySpec CaseStudySpec(
    const std::vector<bist::BistProfile>& profiles);

/// Builds the case-study specification from explicit profiles (pass
/// profiles produced by bist::ProfileGenerator to run the whole flow
/// end-to-end on the synthetic CUT).
CaseStudy BuildCaseStudy(const std::vector<bist::BistProfile>& profiles,
                         std::uint64_t seed = 42);

/// Table-I default. The table is materialized once per process (hoisted out
/// of the old `= PaperTableI()` default argument, which rebuilt all 36
/// profiles at every defaulted call site).
CaseStudy BuildCaseStudy(std::uint64_t seed = 42);

/// Cost of the diagnosis-free reference design: the cheapest implementation
/// found for the same subnet with an empty profile set (used for the paper's
/// "< 3.7 % additional costs" headline). `seed` must match the case study's
/// construction seed.
double BaselineCost(std::uint64_t seed = 42);

/// The canonical TopologySpec of the forward-looking heterogeneous subnet.
arch::TopologySpec FutureCaseStudySpec(
    const std::vector<bist::BistProfile>& gen0,
    std::vector<bist::BistProfile> gen1);

/// A forward-looking heterogeneous subnet (beyond the paper's case study):
/// 20 ECUs of two CUT generations on 4 CAN buses (one of them a high-speed
/// backbone segment), 12 sensors, 8 actuators, 6 control applications.
/// Gateway pattern memory is shared only within a CUT generation; an empty
/// `gen1` derives the second generation from `gen0` via
/// arch::NextGenerationProfiles (larger die: x3 pattern data, x2.5 session
/// time).
CaseStudy BuildFutureCaseStudy(const std::vector<bist::BistProfile>& gen0,
                               std::vector<bist::BistProfile> gen1 = {},
                               std::uint64_t seed = 43);

/// Table-I default of the future subnet (same per-process hoisting as the
/// seed-only BuildCaseStudy overload).
CaseStudy BuildFutureCaseStudy(std::uint64_t seed = 43);

}  // namespace bistdse::casestudy
