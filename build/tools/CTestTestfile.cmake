# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_explore "/root/repo/build/tools/bistdse_cli" "explore" "--evals" "300" "--pop" "16" "--report" "1" "--deadline" "100000" "--plan" "--islands" "2")
set_tests_properties(cli_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore_spec "/root/repo/build/tools/bistdse_cli" "explore" "--spec" "/root/repo/examples/specs/tiny_subnet.spec" "--evals" "200" "--pop" "12" "--csv" "/root/repo/build/cli_front.csv")
set_tests_properties(cli_explore_spec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profiles "/root/repo/build/tools/bistdse_cli" "profiles" "--prps" "128,512" "--seed" "2")
set_tests_properties(cli_profiles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diagnose "/root/repo/build/tools/bistdse_cli" "diagnose" "--patterns" "96" "--samples" "4")
set_tests_properties(cli_diagnose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/bistdse_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore_dual_gen "/root/repo/build/tools/bistdse_cli" "explore" "--spec" "/root/repo/examples/specs/dual_generation.spec" "--evals" "300" "--pop" "12" "--report" "1")
set_tests_properties(cli_explore_dual_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_roundtrip "sh" "-c" "cd /root/repo/build && /root/repo/build/examples/integration_handoff /root/repo/examples/specs/tiny_subnet.spec > /dev/null && /root/repo/build/tools/bistdse_cli plan --spec /root/repo/examples/specs/tiny_subnet.spec --impl chosen.impl")
set_tests_properties(cli_plan_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
