# Empty compiler generated dependencies file for bistdse_cli.
# This may be replaced when dependencies are built.
