file(REMOVE_RECURSE
  "CMakeFiles/bistdse_cli.dir/bistdse_cli.cpp.o"
  "CMakeFiles/bistdse_cli.dir/bistdse_cli.cpp.o.d"
  "bistdse_cli"
  "bistdse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
