file(REMOVE_RECURSE
  "CMakeFiles/bistdse_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/bistdse_netlist.dir/library.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/library.cpp.o.d"
  "CMakeFiles/bistdse_netlist.dir/netlist.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/bistdse_netlist.dir/random_circuit.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/random_circuit.cpp.o.d"
  "CMakeFiles/bistdse_netlist.dir/stats.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/bistdse_netlist.dir/subcircuit.cpp.o"
  "CMakeFiles/bistdse_netlist.dir/subcircuit.cpp.o.d"
  "libbistdse_netlist.a"
  "libbistdse_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
