# Empty compiler generated dependencies file for bistdse_netlist.
# This may be replaced when dependencies are built.
