file(REMOVE_RECURSE
  "libbistdse_netlist.a"
)
