file(REMOVE_RECURSE
  "CMakeFiles/bistdse_util.dir/thread_pool.cpp.o"
  "CMakeFiles/bistdse_util.dir/thread_pool.cpp.o.d"
  "libbistdse_util.a"
  "libbistdse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
