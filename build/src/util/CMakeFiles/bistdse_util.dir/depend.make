# Empty dependencies file for bistdse_util.
# This may be replaced when dependencies are built.
