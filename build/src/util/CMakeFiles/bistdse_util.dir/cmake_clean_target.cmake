file(REMOVE_RECURSE
  "libbistdse_util.a"
)
