file(REMOVE_RECURSE
  "CMakeFiles/bistdse_bist.dir/diagnosis.cpp.o"
  "CMakeFiles/bistdse_bist.dir/diagnosis.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/diagnosis_eval.cpp.o"
  "CMakeFiles/bistdse_bist.dir/diagnosis_eval.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/fault_dictionary.cpp.o"
  "CMakeFiles/bistdse_bist.dir/fault_dictionary.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/lfsr.cpp.o"
  "CMakeFiles/bistdse_bist.dir/lfsr.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/phase_shifter.cpp.o"
  "CMakeFiles/bistdse_bist.dir/phase_shifter.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/profile_generator.cpp.o"
  "CMakeFiles/bistdse_bist.dir/profile_generator.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/reseeding.cpp.o"
  "CMakeFiles/bistdse_bist.dir/reseeding.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/scan_sim.cpp.o"
  "CMakeFiles/bistdse_bist.dir/scan_sim.cpp.o.d"
  "CMakeFiles/bistdse_bist.dir/stumps.cpp.o"
  "CMakeFiles/bistdse_bist.dir/stumps.cpp.o.d"
  "libbistdse_bist.a"
  "libbistdse_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
