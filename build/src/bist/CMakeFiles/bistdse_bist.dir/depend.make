# Empty dependencies file for bistdse_bist.
# This may be replaced when dependencies are built.
