file(REMOVE_RECURSE
  "libbistdse_bist.a"
)
