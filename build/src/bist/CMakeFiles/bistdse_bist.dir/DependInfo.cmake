
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/diagnosis.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/diagnosis.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/diagnosis.cpp.o.d"
  "/root/repo/src/bist/diagnosis_eval.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/diagnosis_eval.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/diagnosis_eval.cpp.o.d"
  "/root/repo/src/bist/fault_dictionary.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/fault_dictionary.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/fault_dictionary.cpp.o.d"
  "/root/repo/src/bist/lfsr.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/lfsr.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/lfsr.cpp.o.d"
  "/root/repo/src/bist/phase_shifter.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/phase_shifter.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/phase_shifter.cpp.o.d"
  "/root/repo/src/bist/profile_generator.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/profile_generator.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/profile_generator.cpp.o.d"
  "/root/repo/src/bist/reseeding.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/reseeding.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/reseeding.cpp.o.d"
  "/root/repo/src/bist/scan_sim.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/scan_sim.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/scan_sim.cpp.o.d"
  "/root/repo/src/bist/stumps.cpp" "src/bist/CMakeFiles/bistdse_bist.dir/stumps.cpp.o" "gcc" "src/bist/CMakeFiles/bistdse_bist.dir/stumps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bistdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/bistdse_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bistdse_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
