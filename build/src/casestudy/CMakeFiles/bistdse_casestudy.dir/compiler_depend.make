# Empty compiler generated dependencies file for bistdse_casestudy.
# This may be replaced when dependencies are built.
