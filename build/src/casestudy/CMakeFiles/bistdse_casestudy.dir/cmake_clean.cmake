file(REMOVE_RECURSE
  "CMakeFiles/bistdse_casestudy.dir/casestudy.cpp.o"
  "CMakeFiles/bistdse_casestudy.dir/casestudy.cpp.o.d"
  "libbistdse_casestudy.a"
  "libbistdse_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
