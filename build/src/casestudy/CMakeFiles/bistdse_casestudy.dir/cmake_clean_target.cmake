file(REMOVE_RECURSE
  "libbistdse_casestudy.a"
)
