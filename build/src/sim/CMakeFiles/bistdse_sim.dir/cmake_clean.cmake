file(REMOVE_RECURSE
  "CMakeFiles/bistdse_sim.dir/fault.cpp.o"
  "CMakeFiles/bistdse_sim.dir/fault.cpp.o.d"
  "CMakeFiles/bistdse_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/bistdse_sim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/bistdse_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/bistdse_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/bistdse_sim.dir/parallel_fault_sim.cpp.o"
  "CMakeFiles/bistdse_sim.dir/parallel_fault_sim.cpp.o.d"
  "CMakeFiles/bistdse_sim.dir/pattern_io.cpp.o"
  "CMakeFiles/bistdse_sim.dir/pattern_io.cpp.o.d"
  "CMakeFiles/bistdse_sim.dir/transition_fault.cpp.o"
  "CMakeFiles/bistdse_sim.dir/transition_fault.cpp.o.d"
  "libbistdse_sim.a"
  "libbistdse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
