
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/fault_sim.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/fault_sim.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/logic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/sim/parallel_fault_sim.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/parallel_fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/parallel_fault_sim.cpp.o.d"
  "/root/repo/src/sim/pattern_io.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/pattern_io.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/pattern_io.cpp.o.d"
  "/root/repo/src/sim/transition_fault.cpp" "src/sim/CMakeFiles/bistdse_sim.dir/transition_fault.cpp.o" "gcc" "src/sim/CMakeFiles/bistdse_sim.dir/transition_fault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/bistdse_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
