# Empty compiler generated dependencies file for bistdse_sim.
# This may be replaced when dependencies are built.
