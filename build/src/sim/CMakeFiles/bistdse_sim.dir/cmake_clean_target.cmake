file(REMOVE_RECURSE
  "libbistdse_sim.a"
)
