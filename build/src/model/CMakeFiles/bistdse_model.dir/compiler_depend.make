# Empty compiler generated dependencies file for bistdse_model.
# This may be replaced when dependencies are built.
