
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/application.cpp" "src/model/CMakeFiles/bistdse_model.dir/application.cpp.o" "gcc" "src/model/CMakeFiles/bistdse_model.dir/application.cpp.o.d"
  "/root/repo/src/model/architecture.cpp" "src/model/CMakeFiles/bistdse_model.dir/architecture.cpp.o" "gcc" "src/model/CMakeFiles/bistdse_model.dir/architecture.cpp.o.d"
  "/root/repo/src/model/implementation.cpp" "src/model/CMakeFiles/bistdse_model.dir/implementation.cpp.o" "gcc" "src/model/CMakeFiles/bistdse_model.dir/implementation.cpp.o.d"
  "/root/repo/src/model/spec_io.cpp" "src/model/CMakeFiles/bistdse_model.dir/spec_io.cpp.o" "gcc" "src/model/CMakeFiles/bistdse_model.dir/spec_io.cpp.o.d"
  "/root/repo/src/model/specification.cpp" "src/model/CMakeFiles/bistdse_model.dir/specification.cpp.o" "gcc" "src/model/CMakeFiles/bistdse_model.dir/specification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bist/CMakeFiles/bistdse_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/bistdse_can.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/bistdse_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bistdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bistdse_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
