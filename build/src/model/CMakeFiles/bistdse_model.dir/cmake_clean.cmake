file(REMOVE_RECURSE
  "CMakeFiles/bistdse_model.dir/application.cpp.o"
  "CMakeFiles/bistdse_model.dir/application.cpp.o.d"
  "CMakeFiles/bistdse_model.dir/architecture.cpp.o"
  "CMakeFiles/bistdse_model.dir/architecture.cpp.o.d"
  "CMakeFiles/bistdse_model.dir/implementation.cpp.o"
  "CMakeFiles/bistdse_model.dir/implementation.cpp.o.d"
  "CMakeFiles/bistdse_model.dir/spec_io.cpp.o"
  "CMakeFiles/bistdse_model.dir/spec_io.cpp.o.d"
  "CMakeFiles/bistdse_model.dir/specification.cpp.o"
  "CMakeFiles/bistdse_model.dir/specification.cpp.o.d"
  "libbistdse_model.a"
  "libbistdse_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
