file(REMOVE_RECURSE
  "libbistdse_model.a"
)
