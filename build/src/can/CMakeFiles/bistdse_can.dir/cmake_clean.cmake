file(REMOVE_RECURSE
  "CMakeFiles/bistdse_can.dir/bus.cpp.o"
  "CMakeFiles/bistdse_can.dir/bus.cpp.o.d"
  "CMakeFiles/bistdse_can.dir/canfd.cpp.o"
  "CMakeFiles/bistdse_can.dir/canfd.cpp.o.d"
  "CMakeFiles/bistdse_can.dir/mirroring.cpp.o"
  "CMakeFiles/bistdse_can.dir/mirroring.cpp.o.d"
  "CMakeFiles/bistdse_can.dir/simulator.cpp.o"
  "CMakeFiles/bistdse_can.dir/simulator.cpp.o.d"
  "libbistdse_can.a"
  "libbistdse_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
