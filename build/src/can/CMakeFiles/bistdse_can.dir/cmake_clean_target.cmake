file(REMOVE_RECURSE
  "libbistdse_can.a"
)
