# Empty compiler generated dependencies file for bistdse_can.
# This may be replaced when dependencies are built.
