
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/bus.cpp" "src/can/CMakeFiles/bistdse_can.dir/bus.cpp.o" "gcc" "src/can/CMakeFiles/bistdse_can.dir/bus.cpp.o.d"
  "/root/repo/src/can/canfd.cpp" "src/can/CMakeFiles/bistdse_can.dir/canfd.cpp.o" "gcc" "src/can/CMakeFiles/bistdse_can.dir/canfd.cpp.o.d"
  "/root/repo/src/can/mirroring.cpp" "src/can/CMakeFiles/bistdse_can.dir/mirroring.cpp.o" "gcc" "src/can/CMakeFiles/bistdse_can.dir/mirroring.cpp.o.d"
  "/root/repo/src/can/simulator.cpp" "src/can/CMakeFiles/bistdse_can.dir/simulator.cpp.o" "gcc" "src/can/CMakeFiles/bistdse_can.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
