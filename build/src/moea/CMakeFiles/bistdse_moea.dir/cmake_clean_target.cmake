file(REMOVE_RECURSE
  "libbistdse_moea.a"
)
