file(REMOVE_RECURSE
  "CMakeFiles/bistdse_moea.dir/archive.cpp.o"
  "CMakeFiles/bistdse_moea.dir/archive.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/dominance.cpp.o"
  "CMakeFiles/bistdse_moea.dir/dominance.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/epsilon_archive.cpp.o"
  "CMakeFiles/bistdse_moea.dir/epsilon_archive.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/genotype.cpp.o"
  "CMakeFiles/bistdse_moea.dir/genotype.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/indicators.cpp.o"
  "CMakeFiles/bistdse_moea.dir/indicators.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/nsga2.cpp.o"
  "CMakeFiles/bistdse_moea.dir/nsga2.cpp.o.d"
  "CMakeFiles/bistdse_moea.dir/spea2.cpp.o"
  "CMakeFiles/bistdse_moea.dir/spea2.cpp.o.d"
  "libbistdse_moea.a"
  "libbistdse_moea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_moea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
