
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moea/archive.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/archive.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/archive.cpp.o.d"
  "/root/repo/src/moea/dominance.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/dominance.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/dominance.cpp.o.d"
  "/root/repo/src/moea/epsilon_archive.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/epsilon_archive.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/epsilon_archive.cpp.o.d"
  "/root/repo/src/moea/genotype.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/genotype.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/genotype.cpp.o.d"
  "/root/repo/src/moea/indicators.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/indicators.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/indicators.cpp.o.d"
  "/root/repo/src/moea/nsga2.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/nsga2.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/nsga2.cpp.o.d"
  "/root/repo/src/moea/spea2.cpp" "src/moea/CMakeFiles/bistdse_moea.dir/spea2.cpp.o" "gcc" "src/moea/CMakeFiles/bistdse_moea.dir/spea2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
