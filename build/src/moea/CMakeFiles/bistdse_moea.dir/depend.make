# Empty dependencies file for bistdse_moea.
# This may be replaced when dependencies are built.
