file(REMOVE_RECURSE
  "CMakeFiles/bistdse_dse.dir/bus_load.cpp.o"
  "CMakeFiles/bistdse_dse.dir/bus_load.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/decoder.cpp.o"
  "CMakeFiles/bistdse_dse.dir/decoder.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/encoding.cpp.o"
  "CMakeFiles/bistdse_dse.dir/encoding.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/exploration.cpp.o"
  "CMakeFiles/bistdse_dse.dir/exploration.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/objectives.cpp.o"
  "CMakeFiles/bistdse_dse.dir/objectives.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/parallel.cpp.o"
  "CMakeFiles/bistdse_dse.dir/parallel.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/partial_networking.cpp.o"
  "CMakeFiles/bistdse_dse.dir/partial_networking.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/refine.cpp.o"
  "CMakeFiles/bistdse_dse.dir/refine.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/report.cpp.o"
  "CMakeFiles/bistdse_dse.dir/report.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/routing_encoding.cpp.o"
  "CMakeFiles/bistdse_dse.dir/routing_encoding.cpp.o.d"
  "CMakeFiles/bistdse_dse.dir/session_plan.cpp.o"
  "CMakeFiles/bistdse_dse.dir/session_plan.cpp.o.d"
  "libbistdse_dse.a"
  "libbistdse_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
