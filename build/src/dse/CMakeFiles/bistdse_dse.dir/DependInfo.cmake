
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/bus_load.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/bus_load.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/bus_load.cpp.o.d"
  "/root/repo/src/dse/decoder.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/decoder.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/decoder.cpp.o.d"
  "/root/repo/src/dse/encoding.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/encoding.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/encoding.cpp.o.d"
  "/root/repo/src/dse/exploration.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/exploration.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/exploration.cpp.o.d"
  "/root/repo/src/dse/objectives.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/objectives.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/objectives.cpp.o.d"
  "/root/repo/src/dse/parallel.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/parallel.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/parallel.cpp.o.d"
  "/root/repo/src/dse/partial_networking.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/partial_networking.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/partial_networking.cpp.o.d"
  "/root/repo/src/dse/refine.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/refine.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/refine.cpp.o.d"
  "/root/repo/src/dse/report.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/report.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/report.cpp.o.d"
  "/root/repo/src/dse/routing_encoding.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/routing_encoding.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/routing_encoding.cpp.o.d"
  "/root/repo/src/dse/session_plan.cpp" "src/dse/CMakeFiles/bistdse_dse.dir/session_plan.cpp.o" "gcc" "src/dse/CMakeFiles/bistdse_dse.dir/session_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/bistdse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bistdse_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/moea/CMakeFiles/bistdse_moea.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bistdse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/bistdse_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/bistdse_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bistdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bistdse_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/bistdse_can.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
