# Empty dependencies file for bistdse_dse.
# This may be replaced when dependencies are built.
