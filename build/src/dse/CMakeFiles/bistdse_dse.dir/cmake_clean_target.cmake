file(REMOVE_RECURSE
  "libbistdse_dse.a"
)
