# Empty dependencies file for bistdse_atpg.
# This may be replaced when dependencies are built.
