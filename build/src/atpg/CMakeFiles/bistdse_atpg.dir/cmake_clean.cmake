file(REMOVE_RECURSE
  "CMakeFiles/bistdse_atpg.dir/podem.cpp.o"
  "CMakeFiles/bistdse_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/bistdse_atpg.dir/tpg.cpp.o"
  "CMakeFiles/bistdse_atpg.dir/tpg.cpp.o.d"
  "libbistdse_atpg.a"
  "libbistdse_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
