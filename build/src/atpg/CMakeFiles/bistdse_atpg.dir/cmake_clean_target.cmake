file(REMOVE_RECURSE
  "libbistdse_atpg.a"
)
