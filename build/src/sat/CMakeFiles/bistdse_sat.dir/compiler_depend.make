# Empty compiler generated dependencies file for bistdse_sat.
# This may be replaced when dependencies are built.
