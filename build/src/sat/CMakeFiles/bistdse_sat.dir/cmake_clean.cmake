file(REMOVE_RECURSE
  "CMakeFiles/bistdse_sat.dir/solver.cpp.o"
  "CMakeFiles/bistdse_sat.dir/solver.cpp.o.d"
  "libbistdse_sat.a"
  "libbistdse_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistdse_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
