file(REMOVE_RECURSE
  "libbistdse_sat.a"
)
