# Empty dependencies file for partial_networking.
# This may be replaced when dependencies are built.
