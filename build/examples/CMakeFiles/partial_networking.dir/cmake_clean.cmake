file(REMOVE_RECURSE
  "CMakeFiles/partial_networking.dir/partial_networking.cpp.o"
  "CMakeFiles/partial_networking.dir/partial_networking.cpp.o.d"
  "partial_networking"
  "partial_networking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_networking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
