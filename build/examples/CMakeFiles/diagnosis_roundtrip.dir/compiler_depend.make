# Empty compiler generated dependencies file for diagnosis_roundtrip.
# This may be replaced when dependencies are built.
