file(REMOVE_RECURSE
  "CMakeFiles/diagnosis_roundtrip.dir/diagnosis_roundtrip.cpp.o"
  "CMakeFiles/diagnosis_roundtrip.dir/diagnosis_roundtrip.cpp.o.d"
  "diagnosis_roundtrip"
  "diagnosis_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnosis_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
