file(REMOVE_RECURSE
  "CMakeFiles/ee_architecture_dse.dir/ee_architecture_dse.cpp.o"
  "CMakeFiles/ee_architecture_dse.dir/ee_architecture_dse.cpp.o.d"
  "ee_architecture_dse"
  "ee_architecture_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ee_architecture_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
