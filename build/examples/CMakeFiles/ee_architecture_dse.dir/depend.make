# Empty dependencies file for ee_architecture_dse.
# This may be replaced when dependencies are built.
