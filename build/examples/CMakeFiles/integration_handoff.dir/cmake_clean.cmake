file(REMOVE_RECURSE
  "CMakeFiles/integration_handoff.dir/integration_handoff.cpp.o"
  "CMakeFiles/integration_handoff.dir/integration_handoff.cpp.o.d"
  "integration_handoff"
  "integration_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
