# Empty compiler generated dependencies file for integration_handoff.
# This may be replaced when dependencies are built.
