file(REMOVE_RECURSE
  "CMakeFiles/bist_profile_generation.dir/bist_profile_generation.cpp.o"
  "CMakeFiles/bist_profile_generation.dir/bist_profile_generation.cpp.o.d"
  "bist_profile_generation"
  "bist_profile_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_profile_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
