# Empty compiler generated dependencies file for bist_profile_generation.
# This may be replaced when dependencies are built.
