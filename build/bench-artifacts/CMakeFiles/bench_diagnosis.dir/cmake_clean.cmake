file(REMOVE_RECURSE
  "../bench/bench_diagnosis"
  "../bench/bench_diagnosis.pdb"
  "CMakeFiles/bench_diagnosis.dir/bench_diagnosis.cpp.o"
  "CMakeFiles/bench_diagnosis.dir/bench_diagnosis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
