file(REMOVE_RECURSE
  "../bench/bench_future"
  "../bench/bench_future.pdb"
  "CMakeFiles/bench_future.dir/bench_future.cpp.o"
  "CMakeFiles/bench_future.dir/bench_future.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
