# Empty compiler generated dependencies file for test_workshop.
# This may be replaced when dependencies are built.
