file(REMOVE_RECURSE
  "CMakeFiles/test_workshop.dir/test_workshop.cpp.o"
  "CMakeFiles/test_workshop.dir/test_workshop.cpp.o.d"
  "test_workshop"
  "test_workshop.pdb"
  "test_workshop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workshop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
