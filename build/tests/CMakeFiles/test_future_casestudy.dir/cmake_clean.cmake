file(REMOVE_RECURSE
  "CMakeFiles/test_future_casestudy.dir/test_future_casestudy.cpp.o"
  "CMakeFiles/test_future_casestudy.dir/test_future_casestudy.cpp.o.d"
  "test_future_casestudy"
  "test_future_casestudy.pdb"
  "test_future_casestudy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_future_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
