# Empty dependencies file for test_future_casestudy.
# This may be replaced when dependencies are built.
