# Empty compiler generated dependencies file for test_canfd.
# This may be replaced when dependencies are built.
