file(REMOVE_RECURSE
  "CMakeFiles/test_canfd.dir/test_canfd.cpp.o"
  "CMakeFiles/test_canfd.dir/test_canfd.cpp.o.d"
  "test_canfd"
  "test_canfd.pdb"
  "test_canfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
