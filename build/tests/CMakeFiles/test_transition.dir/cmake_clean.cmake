file(REMOVE_RECURSE
  "CMakeFiles/test_transition.dir/test_transition.cpp.o"
  "CMakeFiles/test_transition.dir/test_transition.cpp.o.d"
  "test_transition"
  "test_transition.pdb"
  "test_transition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
