file(REMOVE_RECURSE
  "CMakeFiles/test_session_plan.dir/test_session_plan.cpp.o"
  "CMakeFiles/test_session_plan.dir/test_session_plan.cpp.o.d"
  "test_session_plan"
  "test_session_plan.pdb"
  "test_session_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
