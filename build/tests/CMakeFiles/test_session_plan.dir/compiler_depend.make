# Empty compiler generated dependencies file for test_session_plan.
# This may be replaced when dependencies are built.
