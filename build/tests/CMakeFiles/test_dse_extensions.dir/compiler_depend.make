# Empty compiler generated dependencies file for test_dse_extensions.
# This may be replaced when dependencies are built.
