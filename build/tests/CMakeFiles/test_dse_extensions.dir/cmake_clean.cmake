file(REMOVE_RECURSE
  "CMakeFiles/test_dse_extensions.dir/test_dse_extensions.cpp.o"
  "CMakeFiles/test_dse_extensions.dir/test_dse_extensions.cpp.o.d"
  "test_dse_extensions"
  "test_dse_extensions.pdb"
  "test_dse_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
