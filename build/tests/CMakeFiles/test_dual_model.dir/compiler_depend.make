# Empty compiler generated dependencies file for test_dual_model.
# This may be replaced when dependencies are built.
