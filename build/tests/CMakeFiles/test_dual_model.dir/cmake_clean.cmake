file(REMOVE_RECURSE
  "CMakeFiles/test_dual_model.dir/test_dual_model.cpp.o"
  "CMakeFiles/test_dual_model.dir/test_dual_model.cpp.o.d"
  "test_dual_model"
  "test_dual_model.pdb"
  "test_dual_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
