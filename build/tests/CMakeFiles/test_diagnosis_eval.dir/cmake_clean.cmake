file(REMOVE_RECURSE
  "CMakeFiles/test_diagnosis_eval.dir/test_diagnosis_eval.cpp.o"
  "CMakeFiles/test_diagnosis_eval.dir/test_diagnosis_eval.cpp.o.d"
  "test_diagnosis_eval"
  "test_diagnosis_eval.pdb"
  "test_diagnosis_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diagnosis_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
