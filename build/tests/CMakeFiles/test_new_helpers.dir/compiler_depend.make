# Empty compiler generated dependencies file for test_new_helpers.
# This may be replaced when dependencies are built.
