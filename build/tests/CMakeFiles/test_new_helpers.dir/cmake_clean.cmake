file(REMOVE_RECURSE
  "CMakeFiles/test_new_helpers.dir/test_new_helpers.cpp.o"
  "CMakeFiles/test_new_helpers.dir/test_new_helpers.cpp.o.d"
  "test_new_helpers"
  "test_new_helpers.pdb"
  "test_new_helpers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_new_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
