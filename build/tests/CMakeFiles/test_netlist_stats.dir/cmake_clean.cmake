file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_stats.dir/test_netlist_stats.cpp.o"
  "CMakeFiles/test_netlist_stats.dir/test_netlist_stats.cpp.o.d"
  "test_netlist_stats"
  "test_netlist_stats.pdb"
  "test_netlist_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
