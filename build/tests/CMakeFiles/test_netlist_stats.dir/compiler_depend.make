# Empty compiler generated dependencies file for test_netlist_stats.
# This may be replaced when dependencies are built.
