# Empty dependencies file for test_profile_generator.
# This may be replaced when dependencies are built.
