file(REMOVE_RECURSE
  "CMakeFiles/test_profile_generator.dir/test_profile_generator.cpp.o"
  "CMakeFiles/test_profile_generator.dir/test_profile_generator.cpp.o.d"
  "test_profile_generator"
  "test_profile_generator.pdb"
  "test_profile_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
