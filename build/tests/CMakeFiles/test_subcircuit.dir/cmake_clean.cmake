file(REMOVE_RECURSE
  "CMakeFiles/test_subcircuit.dir/test_subcircuit.cpp.o"
  "CMakeFiles/test_subcircuit.dir/test_subcircuit.cpp.o.d"
  "test_subcircuit"
  "test_subcircuit.pdb"
  "test_subcircuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subcircuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
