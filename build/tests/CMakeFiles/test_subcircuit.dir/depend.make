# Empty dependencies file for test_subcircuit.
# This may be replaced when dependencies are built.
