# Empty dependencies file for test_spec_io.
# This may be replaced when dependencies are built.
