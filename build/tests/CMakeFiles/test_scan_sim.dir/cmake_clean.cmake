file(REMOVE_RECURSE
  "CMakeFiles/test_scan_sim.dir/test_scan_sim.cpp.o"
  "CMakeFiles/test_scan_sim.dir/test_scan_sim.cpp.o.d"
  "test_scan_sim"
  "test_scan_sim.pdb"
  "test_scan_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
