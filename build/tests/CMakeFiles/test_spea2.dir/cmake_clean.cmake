file(REMOVE_RECURSE
  "CMakeFiles/test_spea2.dir/test_spea2.cpp.o"
  "CMakeFiles/test_spea2.dir/test_spea2.cpp.o.d"
  "test_spea2"
  "test_spea2.pdb"
  "test_spea2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spea2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
