# Empty compiler generated dependencies file for test_spea2.
# This may be replaced when dependencies are built.
