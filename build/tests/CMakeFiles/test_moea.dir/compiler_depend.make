# Empty compiler generated dependencies file for test_moea.
# This may be replaced when dependencies are built.
