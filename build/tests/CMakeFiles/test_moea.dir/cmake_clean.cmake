file(REMOVE_RECURSE
  "CMakeFiles/test_moea.dir/test_moea.cpp.o"
  "CMakeFiles/test_moea.dir/test_moea.cpp.o.d"
  "test_moea"
  "test_moea.pdb"
  "test_moea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
