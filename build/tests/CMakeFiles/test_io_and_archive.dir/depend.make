# Empty dependencies file for test_io_and_archive.
# This may be replaced when dependencies are built.
