file(REMOVE_RECURSE
  "CMakeFiles/test_io_and_archive.dir/test_io_and_archive.cpp.o"
  "CMakeFiles/test_io_and_archive.dir/test_io_and_archive.cpp.o.d"
  "test_io_and_archive"
  "test_io_and_archive.pdb"
  "test_io_and_archive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_and_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
