# Empty dependencies file for test_fault_dictionary.
# This may be replaced when dependencies are built.
