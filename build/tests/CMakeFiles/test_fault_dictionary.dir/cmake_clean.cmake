file(REMOVE_RECURSE
  "CMakeFiles/test_fault_dictionary.dir/test_fault_dictionary.cpp.o"
  "CMakeFiles/test_fault_dictionary.dir/test_fault_dictionary.cpp.o.d"
  "test_fault_dictionary"
  "test_fault_dictionary.pdb"
  "test_fault_dictionary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
