// bistdse command-line front end.
//
//   bistdse_cli explore   — run the DSE on a case study, export the front
//   bistdse_cli corpus    — sweep generated topology families through
//                           DSE + adversarial session campaigns
//   bistdse_cli profiles  — generate BIST profiles for a synthetic CUT
//   bistdse_cli diagnose  — measure diagnosis accuracy on a synthetic CUT
//   bistdse_cli stumps    — batch faulty STUMPS sessions on a synthetic CUT
//   bistdse_cli dict      — build / query / serve fault-dictionary artifacts
//   bistdse_cli plan      — session timelines for a saved implementation
//
// Examples:
//   bistdse_cli explore --evals 50000 --csv front.csv --report 3
//   bistdse_cli explore --future --evals 20000
//   bistdse_cli profiles --prps 500,1000,5000 --seed 7
//   bistdse_cli diagnose --patterns 1024 --samples 50
//   bistdse_cli stumps --patterns 2048 --faults 64 --threads 0
//   bistdse_cli dict build --seed 3 --patterns 512 --out cut.fdict
//   bistdse_cli dict query --in cut.fdict --seed 3 --mmap --samples 20
//   bistdse_cli dict serve --in cut.fdict --seed 3 --shards 4 --queries 256
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "arch/corpus.hpp"
#include "bist/diagnosis_eval.hpp"
#include "bist/dictionary_store.hpp"
#include "bist/profile_generator.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/parallel.hpp"
#include "dse/partial_networking.hpp"
#include "dse/session_plan.hpp"
#include "dse/report.hpp"  // WriteFrontCsv, DescribeImplementation, SummarizeFront
#include "model/spec_io.hpp"
#include "net/session_executor.hpp"
#include "serve/server.hpp"

using namespace bistdse;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& name) const { return values.count(name) > 0; }
  std::uint64_t U64(const std::string& name, std::uint64_t fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double Real(const std::string& name, double fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  std::string Str(const std::string& name, const std::string& fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
};

/// Parse-time validation of --block-width: reject unsupported widths with a
/// message naming the value and the supported set, instead of letting the
/// first DispatchBlockWidth deep inside a campaign throw mid-run.
std::size_t BlockWidthFlag(const Flags& flags, std::uint64_t fallback) {
  const std::uint64_t w = flags.U64("block-width", fallback);
  if (!sim::IsSupportedBlockWidth(w)) {
    std::fprintf(stderr, "invalid --block-width %llu (supported: %s)\n",
                 static_cast<unsigned long long>(w),
                 sim::SupportedBlockWidthList().c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(w);
}

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      std::exit(2);
    }
    const std::string name = arg + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values[name] = argv[++i];
    } else {
      flags.values[name] = "1";  // boolean flag
    }
  }
  return flags;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bistdse_cli <command> [flags]\n"
      "  explore  --evals N --pop N --seed N [--future] [--spec FILE]\n"
      "           [--algorithm nsga2|spea2] [--mutation-rate X] [--threads K]\n"
      "           [--csv FILE] [--islands K] [--plan]\n"
      "           [--report K] [--deadline MS] [--min-quality PCT]\n"
      "           [--simulate-sessions] [--frame-loss P] [--trace-out FILE]\n"
      "  corpus   --count N --seed N [--spec] [--min-ecus N] [--max-ecus N]\n"
      "           [--min-buses N] [--max-buses N] [--fd-fraction P]\n"
      "           [--profiles K] [--data-scale X] [--evals N] [--pop N]\n"
      "           [--min-quality PCT] [--rounds N] [--max-drop P]\n"
      "           [--max-corrupt P] [--max-reorder P]\n"
      "           (--spec: print the sampled topology structures and stop;\n"
      "            exit 0: every campaign round upheld the PERF.md\n"
      "            invariants; 1: violation or incomplete session)\n"
      "  profiles --seed N [--prps A,B,C] [--scale X] [--threads K]\n"
      "           [--block-width W] [--no-shortcuts]\n"
      "  diagnose --seed N [--patterns N] [--samples N] [--window N]\n"
      "           [--threads K] [--block-width W]\n"
      "  stumps   --seed N [--patterns N] [--faults N] [--window N]\n"
      "           [--threads K] [--block-width W] [--no-shortcuts]\n"
      "  dict build --out FILE --seed N [--patterns N] [--window N]\n"
      "           [--max-faults N] [--threads K] [--block-width W]\n"
      "  dict query --in FILE --seed N [--window N] [--mmap] [--samples N]\n"
      "           [--top-k K]\n"
      "  dict serve --in FILE --seed N [--window N] [--mmap] [--shards S]\n"
      "           [--queries N] [--samples N] [--top-k K] [--threads K]\n"
      "           [--max-inflight N] [--frame-loss P] [--corrupt P]\n"
      "           [--reorder P] [--period MS] [--trace-out FILE]\n"
      "           [--reload FILE] [--reload-after N]\n"
      "           (exit 0: all answered; 1: rejected/failed/unanswered\n"
      "            requests; 2: usage; 3: artifact or trace open error.\n"
      "            --reload FILE arms SIGHUP-triggered dictionary rollover;\n"
      "            --reload-after N triggers it after N answered requests)\n"
      "  (--block-width W: W in {1, 2, 4, 8, 16}, validated at parse time)\n"
      "  plan     --spec FILE --impl FILE [--deadline MS]\n"
      "           [--simulate-sessions] [--frame-loss P] [--trace-out FILE]\n");
  return 2;
}

// --simulate-sessions: frame-accurate replay of every planned BIST session
// on the implementation's routed bus network, cross-checked against the
// analytical Eq.-1 / WCRT numbers. Returns 0 when every session completed
// and no frame exceeded its analytical worst-case response time.
int SimulateSessions(const model::Specification& spec,
                     const model::BistAugmentation& augmentation,
                     const model::Implementation& impl, const Flags& flags) {
  net::SessionExecutorOptions options;
  options.faults.drop_rate = flags.Real("frame-loss", 0.0);
  options.faults.seed = flags.U64("seed", 1);
  net::SessionExecutor executor(spec, augmentation, options);
  net::EventTrace trace;
  const bool want_trace = flags.Has("trace-out");
  const auto report = executor.Execute(impl, want_trace ? &trace : nullptr);
  for (const auto& session : report.sessions) {
    std::printf("%s", net::FormatSessionExecution(spec, session).c_str());
  }
  std::printf(
      "simulated %zu sessions (frame loss %.2f %%): %s, wcrt %s, "
      "max download error %.2f %%, %llu retransmissions "
      "(%llu dropped, %llu corrupted)\n",
      report.sessions.size(), 100.0 * options.faults.drop_rate,
      report.all_completed ? "all completed" : "INCOMPLETE",
      report.all_wcrt_dominated ? "dominated" : "EXCEEDED",
      100.0 * report.max_download_rel_error,
      static_cast<unsigned long long>(report.total_retransmissions),
      static_cast<unsigned long long>(report.total_frames_dropped),
      static_cast<unsigned long long>(report.total_frames_corrupted));
  if (want_trace) {
    const std::string path = flags.Str("trace-out", "trace.jsonl");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    trace.WriteJsonl(out);
    std::printf("event trace (%zu events) written to %s\n",
                trace.Events().size(), path.c_str());
  }
  return report.all_completed && report.all_wcrt_dominated ? 0 : 1;
}

int RunExplore(const Flags& flags) {
  casestudy::CaseStudy cs;
  if (flags.Has("spec")) {
    auto parsed = model::ParseSpecFile(flags.Str("spec", ""));
    cs.augmentation = parsed.Augment();
    cs.spec = std::move(parsed.spec);
  } else {
    cs = flags.Has("future") ? casestudy::BuildFutureCaseStudy()
                             : casestudy::BuildCaseStudy();
  }
  dse::ExplorationConfig config;
  config.evaluations = flags.U64("evals", 20000);
  config.population_size = flags.U64("pop", 100);
  config.seed = flags.U64("seed", 1);
  config.mutation_rate = flags.Real("mutation-rate", -1.0);
  config.threads = flags.U64("threads", 1);
  if (flags.Has("algorithm")) {
    const std::string name = flags.Str("algorithm", "nsga2");
    const auto kind = moea::ParseAlgorithmName(name);
    if (!kind) {
      std::fprintf(stderr, "unknown --algorithm: %s\n", name.c_str());
      return 2;
    }
    config.algorithm = *kind;
  }

  dse::ExplorationResult result;
  const std::size_t islands = flags.U64("islands", 1);
  if (islands > 1) {
    const auto merged =
        dse::ExploreParallel(cs.spec, cs.augmentation, config, islands);
    result.pareto = merged.pareto;
    result.evaluations = merged.evaluations;
    result.eval_cache_hits = merged.eval_cache_hits;
    result.wall_seconds = merged.wall_seconds;
    result.decoder_stats = merged.decoder_stats;
  } else {
    dse::Explorer explorer(cs.spec, cs.augmentation, config);
    result = explorer.Run();
  }
  std::printf("%s: %zu evaluations (%zu memoized, %llu decodes, "
              "%llu infeasible) in %.1f s -> %zu Pareto-optimal "
              "implementations\n",
              moea::AlgorithmName(config.algorithm), result.evaluations,
              result.eval_cache_hits,
              static_cast<unsigned long long>(result.decoder_stats.decodes),
              static_cast<unsigned long long>(result.decoder_stats.infeasible),
              result.wall_seconds, result.pareto.size());
  std::printf("%s", dse::SummarizeFront(result,
                                        flags.Real("min-quality", 80.0))
                        .c_str());

  if (flags.Has("deadline")) {
    const double deadline = flags.Real("deadline", 1000.0);
    std::size_t feasible = 0;
    for (const auto& entry : result.pareto) {
      const auto report = dse::AnalyzePartialNetworking(
          cs.spec, cs.augmentation, entry.implementation, {}, deadline);
      feasible += report.AllDeadlinesMet();
    }
    std::printf("partial-networking deadline %.0f ms: %zu/%zu designs "
                "feasible\n",
                deadline, feasible, result.pareto.size());
  }

  if (flags.Has("csv")) {
    const std::string path = flags.Str("csv", "front.csv");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    dse::WriteFrontCsv(result, out);
    std::printf("front written to %s\n", path.c_str());
  }

  const double min_quality = flags.Real("min-quality", 80.0);
  const std::size_t report_k = flags.U64("report", 0);
  if (report_k > 0) {
    // Cheapest implementations reaching the quality bar.
    const auto picks = dse::RankCheapestMeetingQuality(result, min_quality);
    for (std::size_t i = 0; i < picks.size() && i < report_k; ++i) {
      std::printf("\n--- implementation %zu ---\n%s", i + 1,
                  dse::DescribeImplementation(cs.spec, cs.augmentation,
                                              *picks[i])
                      .c_str());
      if (flags.Has("plan")) {
        const auto plans = dse::PlanSessions(cs.spec, cs.augmentation,
                                             picks[i]->implementation);
        for (const auto& plan : plans) {
          std::printf("%s", dse::FormatSessionPlan(cs.spec, plan).c_str());
        }
      }
      if (flags.Has("simulate-sessions")) {
        SimulateSessions(cs.spec, cs.augmentation, picks[i]->implementation,
                         flags);
      }
    }
  }
  return 0;
}

// `corpus`: seeded sweep over generated E/E-architecture families. Each
// sampled topology runs the full pipeline — DSE, representative pick,
// adversarial session campaign — and the exit code reflects whether the
// PERF.md invariants held on every round of every member.
int RunCorpus(const Flags& flags) {
  arch::CorpusSpec corpus;
  corpus.count = flags.U64("count", 10);
  corpus.seed = flags.U64("seed", 1);
  corpus.min_ecus = flags.U64("min-ecus", 5);
  corpus.max_ecus = flags.U64("max-ecus", 50);
  corpus.min_buses = flags.U64("min-buses", 2);
  corpus.max_buses = flags.U64("max-buses", 8);
  corpus.fd_fraction = flags.Real("fd-fraction", 0.35);
  // Scaled profiles keep the frame-level campaigns tractable; --data-scale 1
  // replays full Table-I pattern sets.
  corpus.profile_pool = casestudy::ScaledTableI(
      flags.Real("data-scale", 1.0 / 256), flags.U64("profiles", 4));

  if (flags.Has("spec")) {
    std::printf("| topology | ecus | buses (fd) | sensors | actuators | "
                "gens | content hash |\n");
    for (std::size_t i = 0; i < corpus.count; ++i) {
      const auto spec = arch::SampleTopologySpec(corpus, i);
      const auto topo =
          arch::GenerateTopology(spec, arch::TopologySeed(corpus, i));
      std::printf("| %s | %zu | %zu (%zu) | %zu | %zu | %zu | %016llx |\n",
                  spec.name.c_str(), spec.num_ecus, spec.buses.size(),
                  arch::CountFdBuses(spec), spec.num_sensors,
                  spec.num_actuators, spec.profile_sets.size(),
                  static_cast<unsigned long long>(
                      model::ContentHash(topo.spec)));
    }
    return 0;
  }

  arch::CorpusSweepOptions options;
  options.exploration.evaluations = flags.U64("evals", 300);
  options.exploration.population_size = flags.U64("pop", 24);
  options.exploration.seed = corpus.seed;
  options.min_quality_percent = flags.Real("min-quality", 80.0);
  options.campaign.rounds = flags.U64("rounds", 3);
  options.campaign.max_drop_rate = flags.Real("max-drop", 0.04);
  options.campaign.max_corrupt_rate = flags.Real("max-corrupt", 0.02);
  options.campaign.max_reorder_rate = flags.Real("max-reorder", 0.02);
  options.campaign.seed = corpus.seed;

  const auto report = arch::SweepCorpus(corpus, options);
  std::printf("%s", arch::FormatCorpusReport(report).c_str());
  return report.all_passed ? 0 : 1;
}

int RunProfiles(const Flags& flags) {
  auto spec = casestudy::ScaledCutSpec(flags.U64("seed", 1));
  const auto cut = netlist::GenerateRandomCircuit(spec);

  bist::ProfileGeneratorConfig config;
  config.stumps = casestudy::PaperStumpsConfig();
  config.byte_scale = flags.Real("scale", 1.0);
  // 0 = all cores; results are bit-identical for every thread count.
  config.threads = flags.U64("threads", 0);
  // W*64 patterns per fault-simulation sweep; bit-identical for every W.
  config.block_width = BlockWidthFlag(flags, 4);
  // Ablation knob: disable the FFR/dominator detection shortcuts.
  config.structural_shortcuts = !flags.Has("no-shortcuts");
  if (flags.Has("prps")) {
    config.prp_counts.clear();
    const std::string list = flags.Str("prps", "");
    std::size_t pos = 0;
    while (pos < list.size()) {
      config.prp_counts.push_back(std::strtoull(list.c_str() + pos, nullptr, 10));
      pos = list.find(',', pos);
      if (pos == std::string::npos) break;
      ++pos;
    }
  } else {
    config.prp_counts = {500, 1000, 5000, 20000};
  }
  bist::ProfileGenerator generator(cut, config);
  const auto profiles = generator.GenerateAll();
  std::printf("%s", bist::FormatProfileTable(profiles).c_str());
  return 0;
}

int RunDiagnose(const Flags& flags) {
  auto spec = casestudy::ScaledCutSpec(flags.U64("seed", 3));
  spec.num_gates = 1500;
  spec.num_flops = 128;
  const auto cut = netlist::GenerateRandomCircuit(spec);

  bist::StumpsConfig config = casestudy::PaperStumpsConfig();
  config.signature_window =
      static_cast<std::uint32_t>(flags.U64("window", 32));
  bist::DiagnosisEvalOptions options;
  options.num_random_patterns = flags.U64("patterns", 512);
  options.max_samples = flags.U64("samples", 60);
  options.threads = flags.U64("threads", 0);
  options.block_width = BlockWidthFlag(flags, 4);
  const auto faults_total = sim::CollapsedFaults(cut).size();
  options.sample_stride =
      std::max<std::size_t>(1, faults_total / options.max_samples);

  const auto acc = bist::EvaluateDiagnosisAccuracy(cut, config, options);
  std::printf("injected %zu (escaped %zu): top-1 %.0f %%, top-%zu %.0f %%, "
              "mean rank %.1f\n",
              acc.injected, acc.escaped, 100.0 * acc.Top1Rate(), acc.k,
              100.0 * acc.TopkRate(), acc.mean_rank);
  return 0;
}

// One streaming RunBatch pass over a sample of the collapsed fault universe:
// every pattern block is simulated once and the per-fault MISRs advance
// fault-partitioned across the pool. Reports throughput in session-patterns
// per second (patterns x faulty sessions), the number the campaign kernel's
// parallelism actually scales.
int RunStumps(const Flags& flags) {
  auto spec = casestudy::ScaledCutSpec(flags.U64("seed", 1));
  const auto cut = netlist::GenerateRandomCircuit(spec);

  bist::StumpsConfig config = casestudy::PaperStumpsConfig();
  config.signature_window =
      static_cast<std::uint32_t>(flags.U64("window", 32));
  // 0 = all cores; signatures are bit-identical for every thread count.
  config.sim_threads = flags.U64("threads", 0);
  // W*64 patterns per fault-simulation sweep; bit-identical for every W.
  config.sim_block_width = BlockWidthFlag(flags, 4);
  // Ablation knob: disable the FFR/dominator detection shortcuts.
  config.structural_shortcuts = !flags.Has("no-shortcuts");

  const std::uint64_t num_random = flags.U64("patterns", 2048);
  const auto all_faults = sim::CollapsedFaults(cut);
  const std::size_t want = std::min<std::size_t>(
      std::max<std::uint64_t>(1, flags.U64("faults", 64)), all_faults.size());
  const std::size_t stride = std::max<std::size_t>(1, all_faults.size() / want);
  std::vector<sim::StuckAtFault> faults;
  for (std::size_t fi = 0; fi < all_faults.size() && faults.size() < want;
       fi += stride) {
    faults.push_back(all_faults[fi]);
  }

  bist::StumpsSession session(cut, config);
  // Prime the golden cache outside the timed region: the batch pass itself
  // is what the --threads/--block-width knobs accelerate.
  session.GoldenSignatures(num_random, {});
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = session.RunBatch(num_random, {}, faults);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::size_t failing = 0, fail_entries = 0;
  for (const auto& r : results) {
    failing += !r.pass;
    fail_entries += r.fail_data.size();
  }
  const double session_patterns =
      static_cast<double>(num_random) * static_cast<double>(faults.size());
  std::printf("stumps batch: %zu faulty sessions x %llu patterns in %.3f s "
              "(%.0f session-patterns/s, threads %zu, block width %zu)\n",
              faults.size(), static_cast<unsigned long long>(num_random), secs,
              secs > 0 ? session_patterns / secs : 0.0, config.sim_threads,
              config.sim_block_width);
  std::printf("%zu/%zu sessions fail (%zu fail-data entries, %zu windows "
              "per session)\n",
              failing, results.size(), fail_entries,
              results.empty() ? std::size_t{0}
                              : results.front().window_signatures.size());
  return 0;
}

// --- dict: fault-dictionary serving artifacts -----------------------------
//
// `dict build` fault-simulates one session over the CUT derived from --seed
// and Save()s the dictionary; `dict query` reopens the artifact (Load copy
// or --mmap zero-copy), regenerates faulty sessions for sampled dictionary
// faults, and reports diagnosis accuracy plus open/query timing; `dict
// serve` registers the artifact under --shards (ECU, profile) keys and runs
// a serve::DiagnosisServer over --queries round-robin requests: each
// request's fail data travels to the server as a segmented upload over the
// simulated diagnostic bus (optionally lossy), is diagnosed in batches, and
// the ranking returns as a segmented reply. SIGHUP (with --reload FILE) or
// --reload-after N rolls the dictionary generation over while serving.

bist::StumpsConfig DictStumpsConfig(const Flags& flags) {
  bist::StumpsConfig config = casestudy::PaperStumpsConfig();
  config.signature_window =
      static_cast<std::uint32_t>(flags.U64("window", 32));
  return config;
}

netlist::Netlist DictCut(const Flags& flags) {
  auto spec = casestudy::ScaledCutSpec(flags.U64("seed", 3));
  spec.num_gates = 1500;
  spec.num_flops = 128;  // the `diagnose` command's CUT, for comparability
  return netlist::GenerateRandomCircuit(spec);
}

/// Fail data of faulty sessions for `want` sampled dictionary faults
/// (pass-sessions and escapes are skipped). Returns (fault index in the
/// dictionary, fail data) pairs.
std::vector<std::pair<std::size_t, std::vector<bist::FailDatum>>>
SampleFailData(const netlist::Netlist& cut, const bist::StumpsConfig& config,
               const bist::FaultDictionary& dict, std::size_t want) {
  bist::StumpsSession session(cut, config);
  const auto faults = dict.Faults();
  const std::size_t stride = std::max<std::size_t>(1, faults.size() / want);
  std::vector<std::pair<std::size_t, std::vector<bist::FailDatum>>> out;
  for (std::size_t f = 0; f < faults.size() && out.size() < want;
       f += stride) {
    auto result = session.Run(dict.TotalPatterns(), {}, faults[f]);
    if (!result.fail_data.empty()) {
      out.emplace_back(f, std::move(result.fail_data));
    }
  }
  return out;
}

/// 1-based rank of `injected` in a ranking, or 0 when absent.
std::size_t RankOf(const std::vector<bist::DiagnosisCandidate>& ranked,
                   const sim::StuckAtFault& injected) {
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const sim::StuckAtFault& c = ranked[r].fault;
    if (c.node == injected.node && c.fanin_index == injected.fanin_index &&
        c.stuck_value == injected.stuck_value) {
      return r + 1;
    }
  }
  return 0;
}

int RunDictBuild(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "dict build requires --out\n");
    return 2;
  }
  const auto cut = DictCut(flags);
  const auto config = DictStumpsConfig(flags);
  const std::uint64_t patterns = flags.U64("patterns", 512);

  const auto all_faults = sim::CollapsedFaults(cut);
  const std::size_t want = std::min<std::size_t>(
      std::max<std::uint64_t>(1, flags.U64("max-faults", 512)),
      all_faults.size());
  const std::size_t stride = std::max<std::size_t>(1, all_faults.size() / want);
  std::vector<sim::StuckAtFault> faults;
  for (std::size_t f = 0; f < all_faults.size() && faults.size() < want;
       f += stride) {
    faults.push_back(all_faults[f]);
  }

  const auto t0 = std::chrono::steady_clock::now();
  bist::FaultDictionary dict(cut, config, patterns, {}, std::move(faults),
                             flags.U64("threads", 0),
                             BlockWidthFlag(flags, 4));
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::string path = flags.Str("out", "cut.fdict");
  dict.Save(path);
  std::printf("dict build: %zu faults x %u windows (%llu patterns) in "
              "%.2f s -> %s\n",
              dict.FaultCount(), dict.WindowCount(),
              static_cast<unsigned long long>(dict.TotalPatterns()), build_s,
              path.c_str());
  return 0;
}

int RunDictQuery(const Flags& flags) {
  if (!flags.Has("in")) {
    std::fprintf(stderr, "dict query requires --in\n");
    return 2;
  }
  const std::string path = flags.Str("in", "");
  const bool mapped = flags.Has("mmap");

  const auto t_open = std::chrono::steady_clock::now();
  auto dict = mapped ? bist::FaultDictionary::Map(path)
                     : bist::FaultDictionary::Load(path);
  const double open_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_open)
          .count();

  const auto cut = DictCut(flags);
  const auto config = DictStumpsConfig(flags);
  if (dict.NetlistHash() != cut.ContentHash() ||
      dict.ConfigHash() != bist::SessionStreamConfigHash(config)) {
    std::fprintf(stderr,
                 "%s was built for a different CUT or session config "
                 "(check --seed/--window)\n",
                 path.c_str());
    return 1;
  }

  const auto samples =
      SampleFailData(cut, config, dict, flags.U64("samples", 30));
  const std::size_t top_k = flags.U64("top-k", 5);
  std::size_t top1 = 0, topk = 0;
  double first_query_s = 0.0;
  const auto t_q = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < samples.size(); ++q) {
    const auto ranked = dict.Diagnose(samples[q].second, top_k);
    if (q == 0) {
      first_query_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t_q)
                          .count();
    }
    const std::size_t rank =
        RankOf(ranked, dict.Faults()[samples[q].first]);
    top1 += rank == 1;
    topk += rank >= 1 && rank <= top_k;
  }
  const double query_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_q)
          .count();
  std::printf("dict query (%s): open %.3f ms, first query %.3f ms\n",
              mapped ? "mmap" : "load", 1e3 * open_s, 1e3 * first_query_s);
  std::printf("%zu queries in %.3f s (%.0f queries/s): top-1 %.0f %%, "
              "top-%zu %.0f %%\n",
              samples.size(), query_s,
              query_s > 0 ? static_cast<double>(samples.size()) / query_s : 0.0,
              samples.empty() ? 0.0
                              : 100.0 * static_cast<double>(top1) /
                                    static_cast<double>(samples.size()),
              top_k,
              samples.empty() ? 0.0
                              : 100.0 * static_cast<double>(topk) /
                                    static_cast<double>(samples.size()));
  return 0;
}

volatile std::sig_atomic_t g_reload_requested = 0;
void HandleReloadSignal(int) { g_reload_requested = 1; }

/// One artifact registered under `shards` (ECU, profile) keys — the
/// fleet-store shape; with --mmap the shards share the kernel page cache.
bist::DictionaryStore LoadShardedStore(const std::string& path,
                                       std::size_t shards, bool mapped) {
  bist::DictionaryStore store;
  for (std::size_t s = 0; s < shards; ++s) {
    store.AddFromFile({"ecu-" + std::to_string(s), "p1"}, path, mapped);
  }
  return store;
}

int RunDictServe(const Flags& flags) {
  if (!flags.Has("in")) {
    std::fprintf(stderr, "dict serve requires --in\n");
    return 2;
  }
  const std::string path = flags.Str("in", "");
  const bool mapped = flags.Has("mmap");
  const std::size_t shards = std::max<std::uint64_t>(1, flags.U64("shards", 4));
  const std::size_t num_queries =
      std::max<std::uint64_t>(1, flags.U64("queries", 256));

  bist::DictionaryStore store;
  try {
    store = LoadShardedStore(path, shards, mapped);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(), e.what());
    return 3;
  }

  const auto cut = DictCut(flags);
  const auto config = DictStumpsConfig(flags);
  const auto* shard0 = store.Find({"ecu-0", "p1"});
  if (shard0->NetlistHash() != cut.ContentHash() ||
      shard0->ConfigHash() != bist::SessionStreamConfigHash(config)) {
    std::fprintf(stderr,
                 "%s was built for a different CUT or session config "
                 "(check --seed/--window)\n",
                 path.c_str());
    return 3;
  }
  const auto samples =
      SampleFailData(cut, config, *shard0, flags.U64("samples", 30));
  if (samples.empty()) {
    std::fprintf(stderr, "no failing sample sessions — nothing to serve\n");
    return 3;
  }
  // Copy the injected faults out by value: the store (and with it the
  // Faults() span) moves into the server, and a rollover retires the
  // generation it became once the old dictionaries drain.
  const auto faults = shard0->Faults();
  std::vector<sim::StuckAtFault> injected(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    injected[q] = faults[samples[q % samples.size()].first];
  }

  serve::DiagnosisServerConfig server_config;
  server_config.top_k = flags.U64("top-k", 5);
  server_config.threads = flags.U64("threads", 0);
  server_config.max_inflight = std::max<std::uint64_t>(
      1, flags.U64("max-inflight", 64));
  server_config.slot_period_ms = flags.Real("period", 1.0);
  server_config.faults.drop_rate = flags.Real("frame-loss", 0.0);
  server_config.faults.corrupt_rate = flags.Real("corrupt", 0.0);
  server_config.faults.reorder_rate = flags.Real("reorder", 0.0);
  server_config.faults.seed = flags.U64("seed", 3);

  net::EventTrace trace;
  const bool want_trace = flags.Has("trace-out");
  serve::DiagnosisServer server(std::move(store), server_config,
                                want_trace ? &trace : nullptr);

  // Pace each ECU's offered load to its carrier capacity (with headroom for
  // retransmissions) so the default run is admission-clean; crank --queries
  // against a small --max-inflight to exercise busy rejections instead.
  std::vector<double> next_release(shards, 0.0);
  for (std::size_t q = 0; q < num_queries; ++q) {
    const std::size_t s = q % shards;
    const std::size_t sample = q % samples.size();
    bist::DictQuery query{{"ecu-" + std::to_string(s), "p1"},
                          samples[sample].second};
    const std::uint64_t id = server.Submit(std::move(query), next_release[s]);
    const double frames = static_cast<double>(
        (server.Outcome(id).upload_bytes + server_config.payload_bytes - 1) /
        server_config.payload_bytes);
    next_release[s] += 1.25 * frames * server_config.slot_period_ms + 5.0;
  }

  const std::string reload_path = flags.Str("reload", "");
  if (!reload_path.empty()) std::signal(SIGHUP, HandleReloadSignal);
  const std::uint64_t reload_after = flags.U64("reload-after", 0);
  bool reload_after_armed = reload_after > 0 && !reload_path.empty();

  const auto t0 = std::chrono::steady_clock::now();
  // Chunked horizon: poll the rollover triggers every 50 simulated ms.
  while (!server.AllDone()) {
    const double before_ms = server.NowMs();
    server.Run(before_ms + 50.0);
    const bool signaled = g_reload_requested != 0;
    const bool counted =
        reload_after_armed && server.Stats().answered >= reload_after;
    if (signaled || counted) {
      g_reload_requested = 0;
      reload_after_armed = false;
      try {
        const std::uint32_t version =
            server.Store().Reload(LoadShardedStore(reload_path, shards, mapped));
        std::printf("dict serve: rolled over to %s (generation v%u)\n",
                    reload_path.c_str(), version);
      } catch (const std::exception& e) {
        // Non-disruptive by design: the serving generation is untouched.
        std::fprintf(stderr, "dict serve: reload rejected: %s\n", e.what());
      }
    }
    if (server.NowMs() <= before_ms) break;  // No progress: stuck requests.
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats& stats = server.Stats();
  std::size_t top1 = 0;
  for (std::size_t q = 0; q < num_queries; ++q) {
    const auto& outcome = server.Outcome(q);
    if (outcome.status != serve::RequestStatus::Answered) continue;
    top1 += RankOf(outcome.ranking, injected[q]) == 1;
  }
  std::printf(
      "dict serve (%s): %zu shards, %llu/%llu answered over the bus in "
      "%.1f ms simulated (%.3f s wall, threads %zu, loss %.2f %%), "
      "top-1 %.0f %%\n",
      mapped ? "mmap" : "load", shards,
      static_cast<unsigned long long>(stats.answered),
      static_cast<unsigned long long>(stats.submitted), server.NowMs(),
      wall_s, server_config.threads, 100.0 * server_config.faults.drop_rate,
      stats.answered == 0 ? 0.0
                          : 100.0 * static_cast<double>(top1) /
                                static_cast<double>(stats.answered));
  std::printf(
      "  rejected busy %llu, upload failures %llu, response failures %llu, "
      "%llu batches, max in-flight %zu, mean latency %.1f ms, "
      "generations v%u (%llu reloads, %llu rejected)\n",
      static_cast<unsigned long long>(stats.rejected_busy),
      static_cast<unsigned long long>(stats.upload_failures),
      static_cast<unsigned long long>(stats.response_failures),
      static_cast<unsigned long long>(stats.batches),
      stats.max_inflight_observed,
      stats.answered == 0 ? 0.0
                          : stats.total_latency_ms /
                                static_cast<double>(stats.answered),
      server.Store().Version(),
      static_cast<unsigned long long>(server.Store().Reloads()),
      static_cast<unsigned long long>(server.Store().ReloadRejects()));

  if (want_trace) {
    const std::string trace_path = flags.Str("trace-out", "trace.jsonl");
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 3;
    }
    trace.WriteJsonl(out);
    std::printf("event trace (%zu events) written to %s\n",
                trace.Events().size(), trace_path.c_str());
  }
  return stats.answered == stats.submitted ? 0 : 1;
}

int RunDict(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string sub = argv[2];
  const Flags flags = ParseFlags(argc, argv, 3);
  try {
    if (sub == "build") return RunDictBuild(flags);
    if (sub == "query") return RunDictQuery(flags);
    if (sub == "serve") return RunDictServe(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dict %s: %s\n", sub.c_str(), e.what());
    return 1;
  }
  return Usage();
}

int RunPlan(const Flags& flags) {
  if (!flags.Has("spec") || !flags.Has("impl")) {
    std::fprintf(stderr, "plan requires --spec and --impl\n");
    return 2;
  }
  auto parsed = model::ParseSpecFile(flags.Str("spec", ""));
  const auto augmentation = parsed.Augment();
  std::ifstream impl_in(flags.Str("impl", ""));
  if (!impl_in) {
    std::fprintf(stderr, "cannot open %s\n", flags.Str("impl", "").c_str());
    return 1;
  }
  const auto impl = model::ReadImplementation(parsed.spec, impl_in);
  const auto violations = model::ValidateImplementation(parsed.spec, impl);
  if (!violations.empty()) {
    std::fprintf(stderr, "implementation infeasible: %s\n",
                 violations.front().c_str());
    return 1;
  }

  const auto plans = dse::PlanSessions(parsed.spec, augmentation, impl);
  if (plans.empty()) {
    std::printf("no BIST program selected in this implementation\n");
    return 0;
  }
  for (const auto& plan : plans) {
    std::printf("%s", dse::FormatSessionPlan(parsed.spec, plan).c_str());
  }
  if (flags.Has("deadline")) {
    const double deadline = flags.Real("deadline", 1000.0);
    const auto report = dse::AnalyzePartialNetworking(
        parsed.spec, augmentation, impl, {}, deadline);
    std::printf("partial-networking deadline %.0f ms: %s (%zu violations)\n",
                deadline,
                report.AllDeadlinesMet() ? "MET" : "VIOLATED",
                report.deadline_violations.size());
  }
  if (flags.Has("simulate-sessions")) {
    return SimulateSessions(parsed.spec, augmentation, impl, flags);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "dict") return RunDict(argc, argv);
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "explore") return RunExplore(flags);
  if (command == "corpus") return RunCorpus(flags);
  if (command == "profiles") return RunProfiles(flags);
  if (command == "diagnose") return RunDiagnose(flags);
  if (command == "stumps") return RunStumps(flags);
  if (command == "plan") return RunPlan(flags);
  return Usage();
}
