// Differential fuzzer for the layered SAT core (sat/solver.hpp) against the
// frozen pre-refactor solver (sat/reference_solver.hpp).
//
// Per iteration a random CNF+PB instance is generated and loaded into four
// solvers: the reference, the new solver in pinned-order bit-identity mode,
// the new solver with default inprocessing, and the new solver with the
// VSIDS activity tail. Each instance is solved under several decision
// policies (learned clauses and inprocessing state persist across solves):
//
//   * full policies (every variable pinned): all four verdicts must agree
//     AND all four models must be bit-identical — with a total pinned order
//     the CDCL result is the unique policy-preferred model regardless of
//     propagation order, learned clauses, restarts, or the model-set-
//     preserving inprocessing transforms. One new-solver instance receives
//     the constraints in shuffled order to confirm insertion order does not
//     perturb the canonical model either.
//   * partial policies (half the variables pinned): verdicts must agree;
//     every SAT model is verified against the original constraint list
//     (models may legitimately differ between tail policies).
//
// Usage: sat_fuzz [--iters N] [--seed S]   (defaults: 200 iterations, seed 1)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using bistdse::sat::Lit;
using bistdse::sat::NegLit;
using bistdse::sat::PosLit;
using bistdse::sat::Var;
using bistdse::util::SplitMix64;

struct PbRecord {
  std::vector<std::pair<std::int64_t, Lit>> terms;
  std::int64_t bound = 0;
  bool is_ge = true;
};

/// One random instance plus the ground-truth constraint list for model
/// verification.
struct Instance {
  std::size_t vars = 0;
  std::vector<std::vector<Lit>> clauses;
  std::vector<PbRecord> pbs;
};

Instance RandomInstance(SplitMix64& rng) {
  Instance inst;
  inst.vars = 8 + rng.Below(17);  // 8..24 variables
  const std::size_t n_clauses = inst.vars + rng.Below(2 * inst.vars);
  for (std::size_t i = 0; i < n_clauses; ++i) {
    // Mostly 2-4 literals; the occasional unit keeps root facts exercised.
    const std::size_t len = rng.Chance(0.08) ? 1 : 2 + rng.Below(3);
    std::vector<Lit> clause;
    for (std::size_t k = 0; k < len; ++k) {
      const Var v = static_cast<Var>(rng.Below(inst.vars));
      clause.push_back(rng.Chance(0.5) ? PosLit(v) : NegLit(v));
    }
    inst.clauses.push_back(std::move(clause));
  }
  const std::size_t n_pbs = rng.Below(4);
  for (std::size_t i = 0; i < n_pbs; ++i) {
    PbRecord pb;
    const std::size_t len = 2 + rng.Below(5);
    std::int64_t total = 0;
    for (std::size_t k = 0; k < len; ++k) {
      const auto coef = static_cast<std::int64_t>(1 + rng.Below(5));
      const Var v = static_cast<Var>(rng.Below(inst.vars));
      pb.terms.emplace_back(coef, rng.Chance(0.5) ? PosLit(v) : NegLit(v));
      total += coef;
    }
    pb.is_ge = rng.Chance(0.5);
    // Mostly satisfiable bounds; occasionally tight/infeasible ones.
    pb.bound = static_cast<std::int64_t>(rng.Below(
        static_cast<std::uint64_t>(total) + 2));
    inst.pbs.push_back(std::move(pb));
  }
  return inst;
}

template <typename SolverT>
void Load(SolverT& solver, const Instance& inst,
          const std::vector<std::size_t>& clause_order,
          const std::vector<std::size_t>& pb_order) {
  for (std::size_t i = 0; i < inst.vars; ++i) solver.NewVar();
  for (const std::size_t ci : clause_order) {
    solver.AddClause(inst.clauses[ci]);
  }
  for (const std::size_t pi : pb_order) {
    const PbRecord& pb = inst.pbs[pi];
    auto terms = pb.terms;
    if (pb.is_ge) {
      solver.AddPbGe(std::move(terms), pb.bound);
    } else {
      solver.AddPbLe(std::move(terms), pb.bound);
    }
  }
}

template <typename SolverT>
std::vector<std::uint8_t> Model(const SolverT& solver, std::size_t vars) {
  std::vector<std::uint8_t> model(vars);
  for (std::size_t v = 0; v < vars; ++v) {
    model[v] = solver.IsTrue(static_cast<Var>(v)) ? 1 : 0;
  }
  return model;
}

bool ModelSatisfies(const Instance& inst, const std::vector<std::uint8_t>& m) {
  const auto lit_true = [&](Lit l) {
    const bool pos = m[bistdse::sat::VarOf(l)] != 0;
    return bistdse::sat::IsNeg(l) ? !pos : pos;
  };
  for (const auto& clause : inst.clauses) {
    bool sat = false;
    for (const Lit l : clause) sat = sat || lit_true(l);
    if (!sat) return false;
  }
  for (const PbRecord& pb : inst.pbs) {
    std::int64_t sum = 0;
    for (const auto& [coef, lit] : pb.terms) {
      if (lit_true(lit)) sum += coef;
    }
    if (pb.is_ge ? sum < pb.bound : sum > pb.bound) return false;
  }
  return true;
}

void DumpInstance(const Instance& inst, const std::vector<std::uint8_t>* m) {
  std::fprintf(stderr, "vars=%zu\n", inst.vars);
  for (const auto& clause : inst.clauses) {
    std::fprintf(stderr, "clause:");
    for (const Lit l : clause) {
      std::fprintf(stderr, " %s%u", bistdse::sat::IsNeg(l) ? "-" : "",
                   bistdse::sat::VarOf(l));
    }
    std::fprintf(stderr, "\n");
  }
  for (const PbRecord& pb : inst.pbs) {
    std::fprintf(stderr, "pb %s %lld:", pb.is_ge ? ">=" : "<=",
                 static_cast<long long>(pb.bound));
    for (const auto& [coef, lit] : pb.terms) {
      std::fprintf(stderr, " %lld*%s%u", static_cast<long long>(coef),
                   bistdse::sat::IsNeg(lit) ? "-" : "",
                   bistdse::sat::VarOf(lit));
    }
    std::fprintf(stderr, "\n");
  }
  if (m != nullptr) {
    std::fprintf(stderr, "model:");
    for (std::size_t v = 0; v < m->size(); ++v) {
      std::fprintf(stderr, " %zu=%d", v, (*m)[v]);
    }
    std::fprintf(stderr, "\n");
  }
}

struct Policy {
  std::vector<Var> order;
  std::vector<std::uint8_t> phases;
};

Policy RandomPolicy(SplitMix64& rng, std::size_t vars, bool full) {
  Policy p;
  std::vector<Var> all(vars);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = vars; i > 1; --i) {
    std::swap(all[i - 1], all[rng.Below(i)]);
  }
  const std::size_t take = full ? vars : vars / 2;
  p.order.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take));
  for (std::size_t i = 0; i < take; ++i) {
    p.phases.push_back(rng.Chance(0.5) ? 1 : 0);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 200;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: sat_fuzz [--iters N] [--seed S]\n");
      return 2;
    }
  }

  std::uint64_t sat_count = 0, unsat_count = 0, solve_count = 0;
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + iter);
    const Instance inst = RandomInstance(rng);

    std::vector<std::size_t> clause_order(inst.clauses.size());
    std::iota(clause_order.begin(), clause_order.end(), 0);
    std::vector<std::size_t> pb_order(inst.pbs.size());
    std::iota(pb_order.begin(), pb_order.end(), 0);
    std::vector<std::size_t> shuffled_clauses = clause_order;
    for (std::size_t i = shuffled_clauses.size(); i > 1; --i) {
      std::swap(shuffled_clauses[i - 1], shuffled_clauses[rng.Below(i)]);
    }
    std::vector<std::size_t> shuffled_pbs = pb_order;
    for (std::size_t i = shuffled_pbs.size(); i > 1; --i) {
      std::swap(shuffled_pbs[i - 1], shuffled_pbs[rng.Below(i)]);
    }

    bistdse::sat::reference::Solver ref;
    bistdse::sat::Solver bitid(bistdse::sat::SolverConfig::BitIdentity());
    bistdse::sat::Solver inproc;  // default config: inprocessing on
    bistdse::sat::SolverConfig activity_config;
    activity_config.tail_policy =
        bistdse::sat::SolverConfig::TailPolicy::kActivity;
    bistdse::sat::Solver activity(activity_config);
    bistdse::sat::SolverConfig shuffle_config;
    shuffle_config.inprocess_conflict_interval = 50;  // inprocess often
    bistdse::sat::Solver shuffled(shuffle_config);

    Load(ref, inst, clause_order, pb_order);
    Load(bitid, inst, clause_order, pb_order);
    Load(inproc, inst, clause_order, pb_order);
    Load(activity, inst, clause_order, pb_order);
    Load(shuffled, inst, shuffled_clauses, shuffled_pbs);

    // Several solves per instance: learned clauses and inprocessing state
    // persist, mirroring the SAT-decoding usage pattern.
    const std::size_t rounds = 1 + rng.Below(3);
    for (std::size_t round = 0; round < rounds; ++round) {
      const bool full = rng.Chance(0.7);
      const Policy policy = RandomPolicy(rng, inst.vars, full);
      ref.SetDecisionPolicy(policy.order, policy.phases);
      bitid.SetDecisionPolicy(policy.order, policy.phases);
      inproc.SetDecisionPolicy(policy.order, policy.phases);
      activity.SetDecisionPolicy(policy.order, policy.phases);
      shuffled.SetDecisionPolicy(policy.order, policy.phases);

      const bool ref_sat =
          ref.Solve() == bistdse::sat::reference::SolveResult::Sat;
      const bool bitid_sat = bitid.Solve() == bistdse::sat::SolveResult::Sat;
      const bool inproc_sat = inproc.Solve() == bistdse::sat::SolveResult::Sat;
      const bool activity_sat =
          activity.Solve() == bistdse::sat::SolveResult::Sat;
      const bool shuffled_sat =
          shuffled.Solve() == bistdse::sat::SolveResult::Sat;
      solve_count += 5;

      if (bitid_sat != ref_sat || inproc_sat != ref_sat ||
          activity_sat != ref_sat || shuffled_sat != ref_sat) {
        std::fprintf(stderr,
                     "iter %llu round %zu: verdict mismatch "
                     "(ref=%d bitid=%d inproc=%d activity=%d shuffled=%d)\n",
                     static_cast<unsigned long long>(iter), round, ref_sat,
                     bitid_sat, inproc_sat, activity_sat, shuffled_sat);
        return 1;
      }
      if (!ref_sat) {
        ++unsat_count;
        break;  // the instance stays unsat under every later policy
      }
      ++sat_count;

      const auto ref_model = Model(ref, inst.vars);
      const auto models = {Model(bitid, inst.vars), Model(inproc, inst.vars),
                           Model(activity, inst.vars),
                           Model(shuffled, inst.vars)};
      if (!ModelSatisfies(inst, ref_model)) {
        std::fprintf(stderr, "iter %llu round %zu: reference model invalid\n",
                     static_cast<unsigned long long>(iter), round);
        DumpInstance(inst, &ref_model);
        return 1;
      }
      int which = 0;
      for (const auto& m : models) {
        ++which;
        if (!ModelSatisfies(inst, m)) {
          std::fprintf(stderr,
                       "iter %llu round %zu: solver %d model invalid\n",
                       static_cast<unsigned long long>(iter), round, which);
          DumpInstance(inst, &m);
          return 1;
        }
        // Under a full pinned policy the model is canonical: every solver
        // (and every constraint insertion order) must reproduce it exactly.
        if (full && m != ref_model) {
          std::fprintf(stderr,
                       "iter %llu round %zu: solver %d model differs under "
                       "full pinned policy\n",
                       static_cast<unsigned long long>(iter), round, which);
          return 1;
        }
      }
    }
  }

  std::printf("sat_fuzz: %llu iterations, %llu solves (%llu sat, %llu unsat "
              "rounds), 0 mismatches\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(solve_count),
              static_cast<unsigned long long>(sat_count),
              static_cast<unsigned long long>(unsat_count));
  return 0;
}
