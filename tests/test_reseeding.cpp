#include <gtest/gtest.h>

#include "bist/reseeding.hpp"
#include "util/rng.hpp"

namespace bistdse::bist {
namespace {

using atpg::TestCube;
using atpg::Value3;

TestCube RandomCube(std::uint32_t width, std::uint32_t care_bits,
                    util::SplitMix64& rng) {
  TestCube cube;
  cube.bits.assign(width, Value3::X);
  for (std::uint32_t placed = 0; placed < care_bits;) {
    const auto pos = static_cast<std::size_t>(rng.Below(width));
    if (cube.bits[pos] != Value3::X) continue;
    cube.bits[pos] = rng.Chance(0.5) ? Value3::One : Value3::Zero;
    ++placed;
  }
  return cube;
}

TEST(Reseeding, ExpansionHonorsCareBits) {
  util::SplitMix64 rng(1);
  ReseedingEncoder encoder(120);
  for (int trial = 0; trial < 50; ++trial) {
    const auto cube = RandomCube(120, 8 + trial, rng);
    const auto enc = encoder.Encode(cube);
    ASSERT_TRUE(enc.has_value()) << "trial " << trial;
    const auto expanded = encoder.Expand(*enc);
    ASSERT_EQ(expanded.size(), 120u);
    for (std::size_t i = 0; i < 120; ++i) {
      if (cube.bits[i] == Value3::X) continue;
      EXPECT_EQ(expanded[i], cube.bits[i] == Value3::One ? 1 : 0)
          << "trial " << trial << " position " << i;
    }
  }
}

TEST(Reseeding, SeedIsSmallerThanPattern) {
  // The whole point of reseeding: storage proportional to care bits, not to
  // scan-chain length.
  util::SplitMix64 rng(2);
  ReseedingEncoder encoder(2000);
  const auto cube = RandomCube(2000, 30, rng);
  const auto enc = encoder.Encode(cube);
  ASSERT_TRUE(enc.has_value());
  EXPECT_LT(enc->StorageBytes(), 2000u / 8);
  EXPECT_LE(enc->lfsr_degree, 30u + 20u + 64u);
}

TEST(Reseeding, FullySpecifiedCubeStillEncodable) {
  // Degenerate but legal: every bit is a care bit. The encoder must grow the
  // seed until the system solves (possibly degree > width).
  util::SplitMix64 rng(3);
  ReseedingEncoder encoder(48);
  const auto cube = RandomCube(48, 48, rng);
  const auto enc = encoder.Encode(cube);
  ASSERT_TRUE(enc.has_value());
  const auto expanded = encoder.Expand(*enc);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(expanded[i], cube.bits[i] == Value3::One ? 1 : 0);
  }
}

TEST(Reseeding, AllZeroCube) {
  ReseedingEncoder encoder(64);
  TestCube cube;
  cube.bits.assign(64, Value3::Zero);
  const auto enc = encoder.Encode(cube);
  ASSERT_TRUE(enc.has_value());
  const auto expanded = encoder.Expand(*enc);
  for (auto b : expanded) EXPECT_EQ(b, 0);
}

TEST(Reseeding, EmptyCubeEncodesTrivially) {
  ReseedingEncoder encoder(64);
  TestCube cube;
  cube.bits.assign(64, Value3::X);
  const auto enc = encoder.Encode(cube);
  ASSERT_TRUE(enc.has_value());
  EXPECT_EQ(encoder.Expand(*enc).size(), 64u);
}

TEST(Reseeding, RejectsWidthMismatch) {
  ReseedingEncoder encoder(64);
  TestCube cube;
  cube.bits.assign(32, Value3::X);
  EXPECT_THROW(encoder.Encode(cube), std::invalid_argument);
}

TEST(Reseeding, StorageBytesFormula) {
  EncodedPattern enc;
  enc.lfsr_degree = 33;
  enc.seed_bits.assign(33, 0);
  EXPECT_EQ(enc.StorageBytes(), 5u + 2u);  // ceil(33/8)=5 + header
}

}  // namespace
}  // namespace bistdse::bist
