#include <gtest/gtest.h>

#include "bist/profile_generator.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

ProfileGeneratorConfig SmallConfig() {
  ProfileGeneratorConfig cfg;
  cfg.prp_counts = {64, 256, 1024};
  cfg.coverage_targets_percent = {100.0, 90.0};
  cfg.fill_seeds = {7, 7};
  cfg.stumps.signature_window = 32;
  cfg.podem_backtrack_limit = 50;
  return cfg;
}

class ProfileGeneratorTest : public ::testing::Test {
 protected:
  ProfileGeneratorTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 300)),
        generator_(netlist_, SmallConfig()),
        profiles_(generator_.GenerateAll()) {}

  netlist::Netlist netlist_;
  ProfileGenerator generator_;
  std::vector<BistProfile> profiles_;
};

TEST_F(ProfileGeneratorTest, ProducesFullMatrix) {
  EXPECT_EQ(profiles_.size(), 3u * 2u);
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    EXPECT_EQ(profiles_[i].profile_number, i + 1);
  }
}

TEST_F(ProfileGeneratorTest, RuntimeGrowsWithPatternCount) {
  // Within a variant, more PRPs -> longer session (deterministic top-up
  // shrinks, but PRP time dominates at these ratios).
  EXPECT_LT(profiles_[0].runtime_ms, profiles_[4].runtime_ms);
  EXPECT_LT(profiles_[1].runtime_ms, profiles_[5].runtime_ms);
}

TEST_F(ProfileGeneratorTest, MaxTargetGivesHighestCoverage) {
  // Variant 0 (target 100 %) must reach at least variant 1 (90 %) coverage
  // for every PRP count.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(profiles_[2 * i].fault_coverage_percent,
              profiles_[2 * i + 1].fault_coverage_percent);
  }
}

TEST_F(ProfileGeneratorTest, LowerTargetNeedsLessData) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(profiles_[2 * i + 1].data_bytes, profiles_[2 * i].data_bytes);
  }
}

TEST_F(ProfileGeneratorTest, MorePrpsNeedFewerDeterministicPatterns) {
  EXPECT_GE(profiles_[0].num_deterministic_patterns,
            profiles_[4].num_deterministic_patterns);
}

TEST_F(ProfileGeneratorTest, CoverageTargetRespected) {
  // The 90 % variant must reach 90 % (the circuit is random-pattern friendly
  // enough) without grossly overshooting the necessary pattern count.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(profiles_[2 * i + 1].fault_coverage_percent, 90.0);
  }
}

TEST_F(ProfileGeneratorTest, StatsAreFilled) {
  const auto& stats = generator_.Stats();
  EXPECT_GT(stats.total_collapsed_faults, 0u);
  EXPECT_GT(stats.random_detected_at_max_prps, 0u);
  EXPECT_LE(stats.random_detected_at_max_prps, stats.total_collapsed_faults);
}

TEST(ProfileGeneratorConfigTest, Validation) {
  auto nl = bistdse::testing::MakeSmallRandom(73, 100);
  ProfileGeneratorConfig bad = SmallConfig();
  bad.fill_seeds = {1};
  EXPECT_THROW(ProfileGenerator(nl, bad), std::invalid_argument);
  bad = SmallConfig();
  bad.prp_counts = {1000, 100};
  EXPECT_THROW(ProfileGenerator(nl, bad), std::invalid_argument);
  bad = SmallConfig();
  bad.prp_counts.clear();
  EXPECT_THROW(ProfileGenerator(nl, bad), std::invalid_argument);
}

TEST(ProfileGeneratorScaling, ByteScaleMultiplies) {
  auto nl = bistdse::testing::MakeSmallRandom(75, 200);
  ProfileGeneratorConfig cfg = SmallConfig();
  cfg.prp_counts = {64};
  cfg.coverage_targets_percent = {100.0};
  cfg.fill_seeds = {3};
  ProfileGenerator g1(nl, cfg);
  const auto p1 = g1.GenerateAll();
  cfg.byte_scale = 10.0;
  ProfileGenerator g10(nl, cfg);
  const auto p10 = g10.GenerateAll();
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p10.size(), 1u);
  EXPECT_NEAR(static_cast<double>(p10[0].data_bytes),
              10.0 * static_cast<double>(p1[0].data_bytes),
              10.0);
}

TEST(ProfileGeneratorTransition, MeasuresTdfCoverageWhenEnabled) {
  auto nl = bistdse::testing::MakeSmallRandom(77, 200);
  ProfileGeneratorConfig cfg = SmallConfig();
  cfg.prp_counts = {128};
  cfg.coverage_targets_percent = {100.0};
  cfg.fill_seeds = {5};
  cfg.measure_transition_coverage = true;
  cfg.transition_pairs_cap = 256;
  ProfileGenerator generator(nl, cfg);
  const auto profiles = generator.GenerateAll();
  ASSERT_EQ(profiles.size(), 1u);
  // TDF coverage measured, positive, and below the stuck-at coverage (the
  // classic LOC relation).
  EXPECT_GT(profiles[0].transition_coverage_percent, 20.0);
  EXPECT_LT(profiles[0].transition_coverage_percent,
            profiles[0].fault_coverage_percent);

  // Off by default.
  cfg.measure_transition_coverage = false;
  ProfileGenerator g2(nl, cfg);
  EXPECT_EQ(g2.GenerateAll()[0].transition_coverage_percent, 0.0);
}

TEST(ProfileTable, FormatsAllRows) {
  std::vector<BistProfile> ps(3);
  for (int i = 0; i < 3; ++i) {
    ps[i].profile_number = i + 1;
    ps[i].num_random_patterns = 500 * (i + 1);
    ps[i].fault_coverage_percent = 99.0;
    ps[i].runtime_ms = 4.87;
    ps[i].data_bytes = 2399185;
  }
  const std::string table = FormatProfileTable(ps);
  EXPECT_NE(table.find("2399185"), std::string::npos);
  EXPECT_NE(table.find("#PRPs"), std::string::npos);
  // Header + separator + 3 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);
}

}  // namespace
}  // namespace bistdse::bist
