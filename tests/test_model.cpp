#include <gtest/gtest.h>

#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::model {
namespace {

/// Small fixture: sensor -> ECU1/ECU2 -> actuator over one bus, plus a
/// gateway on the bus.
struct TinySystem {
  Specification spec;
  ResourceId sensor, ecu1, ecu2, actuator, bus, gateway;
  TaskId t_sense, t_ctrl, t_act;
  MessageId m1, m2;

  TinySystem() {
    auto& arch = spec.Architecture();
    sensor = arch.AddResource({"sensor", ResourceKind::Sensor, 1.0, 0, 0});
    ecu1 = arch.AddResource({"ecu1", ResourceKind::Ecu, 10.0, 0.001, 0});
    ecu2 = arch.AddResource({"ecu2", ResourceKind::Ecu, 12.0, 0.001, 0});
    actuator = arch.AddResource({"act", ResourceKind::Actuator, 2.0, 0, 0});
    bus = arch.AddResource({"can0", ResourceKind::Bus, 3.0, 0, 500e3});
    gateway = arch.AddResource({"gw", ResourceKind::Gateway, 20.0, 0.0005, 0});
    arch.AddLink(sensor, bus);
    arch.AddLink(ecu1, bus);
    arch.AddLink(ecu2, bus);
    arch.AddLink(actuator, bus);
    arch.AddLink(gateway, bus);

    auto& app = spec.Application();
    t_sense = app.AddTask({.name = "sense", .kind = TaskKind::Functional});
    t_ctrl = app.AddTask({.name = "ctrl", .kind = TaskKind::Functional});
    t_act = app.AddTask({.name = "act", .kind = TaskKind::Functional});
    Message msg1;
    msg1.name = "m1";
    msg1.sender = t_sense;
    msg1.receivers = {t_ctrl};
    msg1.payload_bytes = 2;
    msg1.period_ms = 10;
    m1 = app.AddMessage(msg1);
    Message msg2;
    msg2.name = "m2";
    msg2.sender = t_ctrl;
    msg2.receivers = {t_act};
    msg2.payload_bytes = 4;
    msg2.period_ms = 10;
    m2 = app.AddMessage(msg2);
    spec.AddMapping(t_sense, sensor);
    spec.AddMapping(t_ctrl, ecu1);
    spec.AddMapping(t_ctrl, ecu2);
    spec.AddMapping(t_act, actuator);
  }
};

bist::BistProfile MakeProfile(std::uint32_t number, std::uint64_t bytes) {
  bist::BistProfile p;
  p.profile_number = number;
  p.num_random_patterns = 500;
  p.fault_coverage_percent = 99.8;
  p.runtime_ms = 4.87;
  p.data_bytes = bytes;
  return p;
}

TEST(Architecture, ShortestPathOnBusTopology) {
  TinySystem sys;
  const auto path = sys.spec.Architecture().ShortestPath(sys.sensor, sys.ecu1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<ResourceId>{sys.sensor, sys.bus, sys.ecu1}));
  const auto self = sys.spec.Architecture().ShortestPath(sys.bus, sys.bus);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->size(), 1u);
}

TEST(Architecture, DisconnectedReturnsNullopt) {
  ArchitectureGraph arch;
  const auto a = arch.AddResource({"a", ResourceKind::Ecu, 1, 0, 0});
  const auto b = arch.AddResource({"b", ResourceKind::Ecu, 1, 0, 0});
  EXPECT_FALSE(arch.ShortestPath(a, b).has_value());
}

TEST(Architecture, GatewayLookup) {
  TinySystem sys;
  EXPECT_EQ(sys.spec.Architecture().Gateway(), sys.gateway);
  ArchitectureGraph no_gw;
  no_gw.AddResource({"x", ResourceKind::Ecu, 1, 0, 0});
  EXPECT_THROW(no_gw.Gateway(), std::logic_error);
}

TEST(Application, RejectsBrokenMessages) {
  ApplicationGraph app;
  Task t_def;
  t_def.name = "t";
  const TaskId t = app.AddTask(t_def);
  Message m;
  m.name = "m";
  m.sender = t;
  EXPECT_THROW(app.AddMessage(m), std::invalid_argument);
  m.receivers = {t};
  EXPECT_THROW(app.AddMessage(m), std::invalid_argument);
  m.sender = 99;
  m.receivers = {t};
  EXPECT_THROW(app.AddMessage(m), std::invalid_argument);
}

TEST(Specification, MappingBookkeeping) {
  TinySystem sys;
  EXPECT_EQ(sys.spec.MappingsOfTask(sys.t_ctrl).size(), 2u);
  EXPECT_EQ(sys.spec.MappingsOnResource(sys.ecu1).size(), 1u);
  EXPECT_THROW(sys.spec.AddMapping(sys.t_ctrl, sys.ecu1),
               std::invalid_argument);
  EXPECT_THROW(sys.spec.AddMapping(sys.t_ctrl, sys.bus), std::invalid_argument);
  sys.spec.Validate();
}

TEST(Specification, ValidateRejectsUnmappableMandatoryTask) {
  TinySystem sys;
  Task orphan;
  orphan.name = "orphan";
  sys.spec.Application().AddTask(orphan);
  EXPECT_THROW(sys.spec.Validate(), std::logic_error);
}

TEST(BistAugmentation, BuildsFig3Structure) {
  TinySystem sys;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[sys.ecu1] = {MakeProfile(1, 2399185), MakeProfile(2, 994156)};
  const auto aug = AugmentWithBist(sys.spec, profiles);

  const auto& app = sys.spec.Application();
  EXPECT_NE(aug.collect_task, kInvalidId);
  EXPECT_EQ(app.GetTask(aug.collect_task).kind, TaskKind::BistCollect);
  ASSERT_EQ(aug.programs_by_ecu.count(sys.ecu1), 1u);
  const auto& programs = aug.programs_by_ecu.at(sys.ecu1);
  ASSERT_EQ(programs.size(), 2u);

  for (const auto& prog : programs) {
    const Task& test = app.GetTask(prog.test_task);
    const Task& data = app.GetTask(prog.data_task);
    EXPECT_EQ(test.kind, TaskKind::BistTest);
    EXPECT_EQ(data.kind, TaskKind::BistData);
    EXPECT_EQ(test.target_ecu, sys.ecu1);
    // b^T only on its ECU; b^D on the ECU or the gateway.
    ASSERT_EQ(sys.spec.MappingsOfTask(prog.test_task).size(), 1u);
    EXPECT_EQ(
        sys.spec.Mappings()[sys.spec.MappingsOfTask(prog.test_task)[0]].resource,
        sys.ecu1);
    EXPECT_EQ(sys.spec.MappingsOfTask(prog.data_task).size(), 2u);
    // Messages: c^D data->test, c^R test->collect.
    EXPECT_EQ(app.GetMessage(prog.pattern_message).sender, prog.data_task);
    EXPECT_EQ(app.GetMessage(prog.fail_message).receivers[0], aug.collect_task);
  }
  EXPECT_GT(app.GetTask(programs[0].data_task).data_bytes,
            app.GetTask(programs[1].data_task).data_bytes);
  sys.spec.Validate();
}

TEST(BistAugmentation, RejectsNonEcuTarget) {
  TinySystem sys;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[sys.bus] = {MakeProfile(1, 100)};
  EXPECT_THROW(AugmentWithBist(sys.spec, profiles), std::invalid_argument);
}

TEST(Implementation, RoutingAndValidationHappyPath) {
  TinySystem sys;
  // Mapping indices: 0 sense->sensor, 1 ctrl->ecu1, 2 ctrl->ecu2,
  // 3 act->actuator.
  Implementation impl;
  impl.binding = {0, 1, 3};
  ASSERT_TRUE(CompleteRoutingAndAllocation(sys.spec, impl));
  const auto violations = ValidateImplementation(sys.spec, impl);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
  EXPECT_EQ(impl.routing.at(sys.m1),
            (std::vector<ResourceId>{sys.sensor, sys.bus, sys.ecu1}));
  EXPECT_TRUE(impl.allocation[sys.bus]);
  EXPECT_FALSE(impl.allocation[sys.ecu2]);
  EXPECT_FALSE(impl.allocation[sys.gateway]);
}

TEST(Implementation, DetectsMissingMandatoryBinding) {
  TinySystem sys;
  Implementation impl;
  impl.binding = {0, 1};  // actuator task unbound
  CompleteRoutingAndAllocation(sys.spec, impl);
  EXPECT_FALSE(ValidateImplementation(sys.spec, impl).empty());
}

TEST(Implementation, DetectsDoubleBinding) {
  TinySystem sys;
  Implementation impl;
  impl.binding = {0, 1, 2, 3};  // ctrl bound twice
  CompleteRoutingAndAllocation(sys.spec, impl);
  EXPECT_FALSE(ValidateImplementation(sys.spec, impl).empty());
}

TEST(Implementation, DetectsBrokenRoute) {
  TinySystem sys;
  Implementation impl;
  impl.binding = {0, 1, 3};
  ASSERT_TRUE(CompleteRoutingAndAllocation(sys.spec, impl));
  impl.routing[sys.m1] = {sys.sensor, sys.ecu1};  // skips the bus
  const auto violations = ValidateImplementation(sys.spec, impl);
  bool found = false;
  for (const auto& v : violations) found |= v.find("2g") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Implementation, Eq2hDiagnosisOnlyResourceRejected) {
  TinySystem sys;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[sys.ecu2] = {MakeProfile(1, 1000)};
  const auto aug = AugmentWithBist(sys.spec, profiles);
  const auto& prog = aug.programs_by_ecu.at(sys.ecu2)[0];

  // Functional tasks on the ecu1 path, b^R on the gateway, BIST pair on
  // ecu2 — but no functional task on ecu2: Eq. 2h violation.
  Implementation impl;
  impl.binding = {0, 1, 3};
  impl.binding.push_back(sys.spec.MappingsOfTask(aug.collect_task)[0]);
  impl.binding.push_back(sys.spec.MappingsOfTask(prog.test_task)[0]);
  impl.binding.push_back(sys.spec.MappingsOfTask(prog.data_task)[0]);
  ASSERT_TRUE(CompleteRoutingAndAllocation(sys.spec, impl));
  const auto violations = ValidateImplementation(sys.spec, impl);
  bool found = false;
  for (const auto& v : violations) found |= v.find("2h") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Implementation, Eq3bCouplingViolation) {
  TinySystem sys;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[sys.ecu1] = {MakeProfile(1, 1000)};
  const auto aug = AugmentWithBist(sys.spec, profiles);
  const auto& prog = aug.programs_by_ecu.at(sys.ecu1)[0];

  Implementation impl;
  impl.binding = {0, 1, 3};
  impl.binding.push_back(sys.spec.MappingsOfTask(aug.collect_task)[0]);
  impl.binding.push_back(sys.spec.MappingsOfTask(prog.test_task)[0]);
  // b^D deliberately unbound.
  ASSERT_TRUE(CompleteRoutingAndAllocation(sys.spec, impl));
  const auto violations = ValidateImplementation(sys.spec, impl);
  bool found = false;
  for (const auto& v : violations) found |= v.find("3b") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Implementation, FullBistBindingIsFeasible) {
  TinySystem sys;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[sys.ecu1] = {MakeProfile(1, 1000)};
  const auto aug = AugmentWithBist(sys.spec, profiles);
  const auto& prog = aug.programs_by_ecu.at(sys.ecu1)[0];

  Implementation impl;
  impl.binding = {0, 1, 3};
  impl.binding.push_back(sys.spec.MappingsOfTask(aug.collect_task)[0]);
  impl.binding.push_back(sys.spec.MappingsOfTask(prog.test_task)[0]);
  // Store patterns at the gateway (second mapping option of b^D).
  impl.binding.push_back(sys.spec.MappingsOfTask(prog.data_task)[1]);
  ASSERT_TRUE(CompleteRoutingAndAllocation(sys.spec, impl));
  const auto violations = ValidateImplementation(sys.spec, impl);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
  // c^D routed gateway -> bus -> ecu1.
  EXPECT_EQ(impl.routing.at(prog.pattern_message),
            (std::vector<ResourceId>{sys.gateway, sys.bus, sys.ecu1}));
}

}  // namespace
}  // namespace bistdse::model
