#include <gtest/gtest.h>

#include "bist/diagnosis_eval.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

TEST(DiagnosisEval, HighAccuracyOnSmallCut) {
  auto nl = bistdse::testing::MakeSmallRandom(81, 250);
  StumpsConfig config;
  config.signature_window = 8;
  config.prpg_seed = 0x77;

  DiagnosisEvalOptions options;
  options.num_random_patterns = 384;
  options.sample_stride = 53;
  options.top_k = 5;
  const auto accuracy = EvaluateDiagnosisAccuracy(nl, config, options);

  ASSERT_GT(accuracy.injected, 5u);
  // Strong-window signature diagnosis should place the true fault (or an
  // equivalent) at the top for the vast majority of injections.
  EXPECT_GE(accuracy.TopkRate(), 0.8) << accuracy.topk << "/" << accuracy.injected;
  EXPECT_GE(accuracy.Top1Rate(), 0.6);
  EXPECT_GE(accuracy.mean_rank, 1.0);
}

TEST(DiagnosisEval, StrongWindowsBeatPlainMisr) {
  // The ablation behind the [9]-style architecture: per-window MISR reset
  // (strong windows) yields strictly better diagnosability than one long
  // signature chain, because windows fail independently.
  auto nl = bistdse::testing::MakeSmallRandom(83, 250);
  DiagnosisEvalOptions options;
  options.num_random_patterns = 384;
  options.sample_stride = 53;
  options.top_k = 5;

  StumpsConfig strong;
  strong.signature_window = 8;
  StumpsConfig plain = strong;
  plain.reset_misr_per_window = false;

  const auto with_strong = EvaluateDiagnosisAccuracy(nl, strong, options);
  const auto with_plain = EvaluateDiagnosisAccuracy(nl, plain, options);
  ASSERT_GT(with_strong.injected, 5u);
  EXPECT_GE(with_strong.TopkRate(), with_plain.TopkRate());
}

TEST(DiagnosisEval, MoreWindowsImproveResolution) {
  auto nl = bistdse::testing::MakeSmallRandom(85, 200);
  DiagnosisEvalOptions options;
  options.num_random_patterns = 256;
  options.sample_stride = 71;
  options.top_k = 5;

  StumpsConfig coarse;
  coarse.signature_window = 128;  // 2 windows
  StumpsConfig fine;
  fine.signature_window = 8;  // 32 windows

  const auto coarse_acc = EvaluateDiagnosisAccuracy(nl, coarse, options);
  const auto fine_acc = EvaluateDiagnosisAccuracy(nl, fine, options);
  ASSERT_GT(fine_acc.injected, 3u);
  EXPECT_GE(fine_acc.TopkRate(), coarse_acc.TopkRate());
}

}  // namespace
}  // namespace bistdse::bist
