#include <gtest/gtest.h>

#include "can/canfd.hpp"
#include "can/mirroring.hpp"

namespace bistdse::can {
namespace {

TEST(CanFd, DlcRounding) {
  EXPECT_EQ(RoundUpFdPayload(0), 0u);
  EXPECT_EQ(RoundUpFdPayload(8), 8u);
  EXPECT_EQ(RoundUpFdPayload(9), 12u);
  EXPECT_EQ(RoundUpFdPayload(13), 16u);
  EXPECT_EQ(RoundUpFdPayload(33), 48u);
  EXPECT_EQ(RoundUpFdPayload(64), 64u);
  EXPECT_THROW(RoundUpFdPayload(65), std::invalid_argument);
}

TEST(CanFd, FrameTimeScalesWithDataRate) {
  CanFdTiming slow{500e3, 500e3};
  CanFdTiming fast{500e3, 4e6};
  // Same arbitration share, 8x faster data phase.
  EXPECT_LT(fast.FrameTimeMs(64), slow.FrameTimeMs(64));
  EXPECT_GT(fast.FrameTimeMs(64), 0.0);
  // A 64-byte FD frame at 500k/2M beats eight classic 8-byte frames.
  CanFdTiming typical{500e3, 2e6};
  CanMessage classic;
  classic.payload_bytes = 8;
  EXPECT_LT(typical.FrameTimeMs(64), 8 * classic.FrameTimeMs(500e3));
}

TEST(CanFd, LargerPayloadLongerFrame) {
  CanFdTiming t;
  EXPECT_LT(t.FrameTimeMs(8), t.FrameTimeMs(16));
  EXPECT_LT(t.FrameTimeMs(16), t.FrameTimeMs(64));
}

TEST(CanFd, MirroredFdTransferBeatsClassic) {
  // Classic CAN mirror: 2 messages x 8 B / 10 ms = 1.6 B/ms.
  std::vector<CanMessage> functional(2);
  functional[0].payload_bytes = 8;
  functional[0].period_ms = 10;
  functional[0].id = 1;
  functional[1].payload_bytes = 8;
  functional[1].period_ms = 10;
  functional[1].id = 2;
  const double classic_ms = MirroredTransferTimeMs(455061, functional);

  // FD mirror reusing the same two 10 ms slots with 64-byte payloads.
  const double fd_ms = MirroredFdTransferTimeMs(455061, 2, 10.0, 64);
  EXPECT_LT(fd_ms, classic_ms);
  EXPECT_NEAR(classic_ms / fd_ms, 8.0, 0.01);  // payload ratio 64/8
}

TEST(CanFd, TransferValidation) {
  EXPECT_THROW(MirroredFdTransferTimeMs(100, 0, 10.0), std::invalid_argument);
  EXPECT_THROW(MirroredFdTransferTimeMs(100, 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::can
