#include <gtest/gtest.h>

#include <set>

#include "bist/lfsr.hpp"
#include "bist/misr.hpp"

namespace bistdse::bist {
namespace {

TEST(Lfsr, MaximalPeriodDegree8) {
  // The built-in degree-8 polynomial is primitive: the state sequence must
  // visit all 2^8 - 1 non-zero states before repeating.
  Lfsr lfsr(Lfsr::DefaultPolynomial(8), 0x5A);
  std::set<std::vector<std::uint8_t>> seen;
  for (int i = 0; i < 255; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.State()).second) << "state repeated at " << i;
    lfsr.Step();
  }
  // After 255 steps the sequence wraps.
  EXPECT_TRUE(seen.count(lfsr.State()));
}

TEST(Lfsr, DeterministicStream) {
  Lfsr a(Lfsr::DefaultPolynomial(32), 12345);
  Lfsr b(Lfsr::DefaultPolynomial(32), 12345);
  EXPECT_EQ(a.Emit(1000), b.Emit(1000));
}

TEST(Lfsr, SeedsProduceDifferentStreams) {
  Lfsr a(Lfsr::DefaultPolynomial(32), 1);
  Lfsr b(Lfsr::DefaultPolynomial(32), 2);
  EXPECT_NE(a.Emit(128), b.Emit(128));
}

TEST(Lfsr, ZeroSeedIsUnlocked) {
  Lfsr lfsr(Lfsr::DefaultPolynomial(16), 0);
  auto bits = lfsr.Emit(64);
  bool any_one = false;
  for (auto b : bits) any_one |= b != 0;
  EXPECT_TRUE(any_one);
}

TEST(Lfsr, ExplicitSeedBitsRoundTrip) {
  std::vector<std::uint8_t> seed(24, 0);
  seed[3] = seed[10] = seed[23] = 1;
  Lfsr lfsr(Lfsr::DefaultPolynomial(24), seed);
  EXPECT_EQ(lfsr.State(), seed);
  EXPECT_EQ(lfsr.Degree(), 24u);
}

TEST(Lfsr, LinearityOfStreams) {
  // LFSR streams are linear in the seed: stream(a XOR b) = stream(a) XOR
  // stream(b). This property is what reseeding encoding relies on.
  const auto taps = Lfsr::DefaultPolynomial(16);
  std::vector<std::uint8_t> sa(16, 0), sb(16, 0), sx(16, 0);
  sa[2] = sa[7] = 1;
  sb[7] = sb[11] = 1;
  for (int i = 0; i < 16; ++i) sx[i] = sa[i] ^ sb[i];
  Lfsr la(taps, sa), lb(taps, sb), lx(taps, sx);
  const auto ea = la.Emit(200), eb = lb.Emit(200), ex = lx.Emit(200);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ex[i], ea[i] ^ eb[i]) << "position " << i;
  }
}

TEST(Lfsr, RejectsInvalidConstruction) {
  EXPECT_THROW(Lfsr({}, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr({0}, 1), std::invalid_argument);
  std::vector<std::uint8_t> wrong(5, 0);
  EXPECT_THROW(Lfsr(Lfsr::DefaultPolynomial(16), wrong),
               std::invalid_argument);
}

TEST(Misr, DifferentResponsesGiveDifferentSignatures) {
  // (Not guaranteed in general — aliasing — but these two short responses
  // must not alias in a 32-bit MISR.)
  Misr a, b;
  for (int i = 0; i < 100; ++i) a.AbsorbBit(i % 3 == 0);
  for (int i = 0; i < 100; ++i) b.AbsorbBit(i % 3 == 1);
  EXPECT_NE(a.Signature(), b.Signature());
}

TEST(Misr, ResetRestoresInitialState) {
  Misr m;
  m.AbsorbWord(0xDEADBEEF, 32);
  m.Reset();
  EXPECT_EQ(m.Signature(), 0u);
}

TEST(Misr, SignatureIsOrderSensitive) {
  Misr a, b;
  a.AbsorbBit(1);
  a.AbsorbBit(0);
  a.AbsorbBit(0);
  b.AbsorbBit(0);
  b.AbsorbBit(0);
  b.AbsorbBit(1);
  EXPECT_NE(a.Signature(), b.Signature());
}

}  // namespace
}  // namespace bistdse::bist
