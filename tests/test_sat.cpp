#include <gtest/gtest.h>

#include <bitset>
#include <limits>
#include <stdexcept>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace bistdse::sat {
namespace {

TEST(SatSolver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({PosLit(a)});
  s.AddClause({NegLit(a), PosLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_TRUE(s.IsTrue(a));
  EXPECT_TRUE(s.IsTrue(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.NewVar();
  s.AddClause({PosLit(a)});
  s.AddClause({NegLit(a)});
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  s.NewVar();
  s.AddClause({});
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  const Var a = s.NewVar();
  s.AddClause({PosLit(a), NegLit(a)});
  EXPECT_EQ(s.Solve(), SolveResult::Sat);
}

TEST(SatSolver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: requires real conflict-driven search.
  Solver s;
  constexpr int P = 4, H = 3;
  Var x[P][H];
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) x[p][h] = s.NewVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> lits;
    for (int h = 0; h < H; ++h) lits.push_back(PosLit(x[p][h]));
    s.AddClause(lits);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.AddClause({NegLit(x[p1][h]), NegLit(x[p2][h])});
  }
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, PbAtLeast) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 5; ++i) v.push_back(s.NewVar());
  std::vector<std::pair<std::int64_t, Lit>> terms;
  for (Var x : v) terms.emplace_back(1, PosLit(x));
  s.AddPbGe(terms, 3);
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  int count = 0;
  for (Var x : v) count += s.IsTrue(x);
  EXPECT_GE(count, 3);
}

TEST(SatSolver, PbAtMost) {
  Solver s;
  std::vector<Var> v;
  std::vector<std::pair<std::int64_t, Lit>> terms;
  std::vector<Lit> all;
  for (int i = 0; i < 5; ++i) {
    v.push_back(s.NewVar());
    terms.emplace_back(1, PosLit(v.back()));
    all.push_back(PosLit(v.back()));
  }
  s.AddPbLe(terms, 2);
  s.AddClause(all);  // at least one
  // Force three specific ones true -> unsat.
  Solver s2;
  std::vector<std::pair<std::int64_t, Lit>> terms2;
  for (int i = 0; i < 5; ++i) {
    const Var x = s2.NewVar();
    terms2.emplace_back(1, PosLit(x));
    if (i < 3) s2.AddClause({PosLit(x)});
  }
  s2.AddPbLe(terms2, 2);
  EXPECT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_EQ(s2.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, PbWeighted) {
  // 3a + 2b + c >= 3 with a=false forces b and c (2 + 1 is exactly 3).
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  s.AddPbGe({{3, PosLit(a)}, {2, PosLit(b)}, {1, PosLit(c)}}, 3);
  s.AddClause({NegLit(a)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_FALSE(s.IsTrue(a));
  EXPECT_TRUE(s.IsTrue(b));
  EXPECT_TRUE(s.IsTrue(c));
}

TEST(SatSolver, PbInfeasibleBound) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  s.AddPbGe({{1, PosLit(a)}, {1, PosLit(b)}}, 3);
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, PbRejectsNonPositiveCoefficients) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  EXPECT_THROW(s.AddPbGe({{0, PosLit(a)}, {1, PosLit(b)}}, 1),
               std::invalid_argument);
  EXPECT_THROW(s.AddPbGe({{-3, PosLit(a)}}, 1), std::invalid_argument);
  EXPECT_THROW(s.AddPbLe({{1, PosLit(a)}, {-1, PosLit(b)}}, 1),
               std::invalid_argument);
  // The rejected constraints must not have corrupted the instance.
  EXPECT_EQ(s.Solve(), SolveResult::Sat);
}

TEST(SatSolver, PbEmptyTermList) {
  // "0 >= bound" is trivially true for bound <= 0 and contradictory above.
  Solver ok;
  ok.NewVar();
  ok.AddPbGe({}, 0);
  ok.AddPbGe({}, -5);
  ok.AddPbLe({}, 0);
  ok.AddPbLe({}, 7);
  EXPECT_EQ(ok.Solve(), SolveResult::Sat);

  Solver bad_ge;
  bad_ge.NewVar();
  bad_ge.AddPbGe({}, 1);
  EXPECT_EQ(bad_ge.Solve(), SolveResult::Unsat);

  Solver bad_le;
  bad_le.NewVar();
  bad_le.AddPbLe({}, -1);  // 0 <= -1
  EXPECT_EQ(bad_le.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, PbTriviallyTrueBoundConstrainsNothing) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  s.AddPbGe({{2, PosLit(a)}, {3, PosLit(b)}}, 0);   // always holds
  s.AddPbGe({{2, PosLit(a)}, {3, PosLit(b)}}, -4);  // always holds
  s.AddPbLe({{2, PosLit(a)}, {3, PosLit(b)}}, 5);   // = coefficient sum
  s.AddClause({NegLit(a)});
  s.AddClause({NegLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_FALSE(s.IsTrue(a));
  EXPECT_FALSE(s.IsTrue(b));
}

TEST(SatSolver, PbTriviallyFalseBoundIsUnsat) {
  Solver ge;
  const Var a = ge.NewVar(), b = ge.NewVar();
  ge.AddPbGe({{2, PosLit(a)}, {3, PosLit(b)}}, 6);  // sum of coefs is 5
  EXPECT_EQ(ge.Solve(), SolveResult::Unsat);

  Solver le;
  const Var c = le.NewVar();
  le.NewVar();
  le.AddPbLe({{4, PosLit(c)}}, -1);  // even all-false reaches only 0
  EXPECT_EQ(le.Solve(), SolveResult::Unsat);
}

TEST(SatSolver, PbCoefficientSumOverflowThrows) {
  constexpr std::int64_t kHuge = std::numeric_limits<std::int64_t>::max() / 2;
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  EXPECT_THROW(
      s.AddPbGe({{kHuge, PosLit(a)}, {kHuge, PosLit(b)}, {kHuge, PosLit(c)}},
                1),
      std::overflow_error);
  EXPECT_THROW(
      s.AddPbLe({{kHuge, PosLit(a)}, {kHuge, PosLit(b)}, {kHuge, PosLit(c)}},
                kHuge),
      std::overflow_error);
  // Le normalization computes total - bound; a representable total with a
  // far-negative bound overflows there.
  EXPECT_THROW(
      s.AddPbLe({{kHuge, PosLit(a)}},
                std::numeric_limits<std::int64_t>::min() + 2),
      std::overflow_error);
  EXPECT_EQ(s.Solve(), SolveResult::Sat);
}

TEST(SatSolver, ExactlyOne) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 8; ++i) lits.push_back(PosLit(s.NewVar()));
  s.AddExactlyOne(lits);
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  int count = 0;
  for (Lit l : lits) count += s.IsTrue(VarOf(l));
  EXPECT_EQ(count, 1);
}

TEST(SatSolver, DecisionPolicyFollowsPhases) {
  // With no conflicting constraints the solver must reproduce the preferred
  // phases exactly — the core contract of SAT-decoding.
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 16; ++i) vars.push_back(s.NewVar());
  // Benign constraints: at least one of each adjacent pair.
  for (int i = 0; i + 1 < 16; ++i)
    s.AddClause({PosLit(vars[i]), PosLit(vars[i + 1])});
  std::vector<std::uint8_t> phases(16);
  for (int i = 0; i < 16; ++i) phases[i] = i % 2 == 0;
  s.SetDecisionPolicy(vars, phases);
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(s.IsTrue(vars[i]), phases[i]) << "var " << i;
  }
}

TEST(SatSolver, DecisionPolicyOrderMatters) {
  // x XOR y (exactly one); priority decides which one wins.
  for (int first = 0; first < 2; ++first) {
    Solver s;
    const Var x = s.NewVar(), y = s.NewVar();
    s.AddExactlyOne(std::vector<Lit>{PosLit(x), PosLit(y)});
    std::vector<Var> order = first == 0 ? std::vector<Var>{x, y}
                                        : std::vector<Var>{y, x};
    std::vector<std::uint8_t> phases = {1, 1};
    s.SetDecisionPolicy(order, phases);
    ASSERT_EQ(s.Solve(), SolveResult::Sat);
    EXPECT_EQ(s.IsTrue(x), first == 0);
    EXPECT_EQ(s.IsTrue(y), first == 1);
  }
}

TEST(SatSolver, ResolveWithDifferentPoliciesReusesInstance) {
  Solver s;
  std::vector<Lit> lits;
  std::vector<Var> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(s.NewVar());
    lits.push_back(PosLit(vars.back()));
  }
  s.AddExactlyOne(lits);
  for (int pick = 0; pick < 6; ++pick) {
    std::vector<Var> order;
    order.push_back(vars[pick]);
    for (int i = 0; i < 6; ++i)
      if (i != pick) order.push_back(vars[i]);
    std::vector<std::uint8_t> phases(6, 0);
    phases[0] = 1;  // prefer the picked one true
    s.SetDecisionPolicy(order, phases);
    ASSERT_EQ(s.Solve(), SolveResult::Sat);
    EXPECT_TRUE(s.IsTrue(vars[pick])) << pick;
  }
}

// Property: agree with brute force on random 3-SAT near the phase
// transition (n=12, m=50).
TEST(SatSolver, AgreesWithBruteForceOnRandom3Sat) {
  util::SplitMix64 rng(2024);
  for (int instance = 0; instance < 40; ++instance) {
    constexpr int n = 12, m = 50;
    std::vector<std::array<Lit, 3>> clauses;
    for (int j = 0; j < m; ++j) {
      std::array<Lit, 3> cl;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.Below(n));
        cl[k] = rng.Chance(0.5) ? PosLit(v) : NegLit(v);
      }
      clauses.push_back(cl);
    }

    bool brute_sat = false;
    for (std::uint32_t assign = 0; assign < (1u << n) && !brute_sat; ++assign) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          const bool val = (assign >> VarOf(l)) & 1;
          any |= IsNeg(l) ? !val : val;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }

    Solver s;
    for (int i = 0; i < n; ++i) s.NewVar();
    for (const auto& cl : clauses) s.AddClause({cl[0], cl[1], cl[2]});
    const bool solver_sat = s.Solve() == SolveResult::Sat;
    ASSERT_EQ(solver_sat, brute_sat) << "instance " << instance;
    if (solver_sat) {
      // The model must satisfy every clause.
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          const bool val = s.IsTrue(VarOf(l));
          any |= IsNeg(l) ? !val : val;
        }
        EXPECT_TRUE(any);
      }
    }
  }
}

// Property: PB + clause mix against brute force.
TEST(SatSolver, AgreesWithBruteForceOnPbMix) {
  util::SplitMix64 rng(777);
  for (int instance = 0; instance < 25; ++instance) {
    constexpr int n = 10;
    struct Pb {
      std::vector<std::pair<std::int64_t, Lit>> terms;
      std::int64_t bound;
    };
    std::vector<Pb> pbs;
    for (int j = 0; j < 4; ++j) {
      Pb pb;
      std::int64_t total = 0;
      for (int k = 0; k < 5; ++k) {
        const Var v = static_cast<Var>(rng.Below(n));
        const auto coef = static_cast<std::int64_t>(1 + rng.Below(4));
        pb.terms.emplace_back(coef, rng.Chance(0.5) ? PosLit(v) : NegLit(v));
        total += coef;
      }
      pb.bound = static_cast<std::int64_t>(rng.Below(total + 1));
      pbs.push_back(pb);
    }

    auto eval = [&](std::uint32_t assign) {
      for (const auto& pb : pbs) {
        std::int64_t sum = 0;
        for (const auto& [coef, l] : pb.terms) {
          const bool val = (assign >> VarOf(l)) & 1;
          if (IsNeg(l) ? !val : val) sum += coef;
        }
        if (sum < pb.bound) return false;
      }
      return true;
    };
    bool brute_sat = false;
    for (std::uint32_t a = 0; a < (1u << n) && !brute_sat; ++a)
      brute_sat = eval(a);

    Solver s;
    for (int i = 0; i < n; ++i) s.NewVar();
    for (const auto& pb : pbs) s.AddPbGe(pb.terms, pb.bound);
    const bool solver_sat = s.Solve() == SolveResult::Sat;
    ASSERT_EQ(solver_sat, brute_sat) << "instance " << instance;
    if (solver_sat) {
      std::uint32_t a = 0;
      for (int i = 0; i < n; ++i)
        if (s.IsTrue(static_cast<Var>(i))) a |= 1u << i;
      EXPECT_TRUE(eval(a)) << "instance " << instance;
    }
  }
}

TEST(SatSolver, StatsAccumulate) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({PosLit(a), PosLit(b)});
  s.AddClause({NegLit(a), PosLit(b)});
  s.AddClause({PosLit(a), NegLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_GT(s.Stats().decisions + s.Stats().propagations, 0u);
}

}  // namespace
}  // namespace bistdse::sat
