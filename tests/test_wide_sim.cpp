// Wide-datapath equivalence: every W > 1 simulation must be bit-identical
// to the W = 1 baseline — detect words, coverage counts, profile tables,
// dictionary windows/signatures and diagnosis rankings — at any thread
// count. These tests pin the contract that a wide block equals W sequential
// narrow 64-pattern blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bist/diagnosis.hpp"
#include "bist/diagnosis_eval.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/profile_generator.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse {
namespace {

using sim::BitPattern;
using sim::PatternWord;
using sim::StuckAtFault;
using sim::WideWord;

std::vector<BitPattern> RandomPatterns(std::size_t count, std::size_t width,
                                       std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<BitPattern> patterns(count);
  for (auto& p : patterns) {
    p.resize(width);
    for (auto& b : p) b = rng.Chance(0.5);
  }
  return patterns;
}

// ---------------------------------------------------------------------------
// WideWord primitives.

TEST(WideWord, FirstSetBitWalksLanesInOrder) {
  WideWord<4> w = WideWord<4>::Zero();
  EXPECT_EQ(w.FirstSetBit(), -1);
  w.lane[2] = PatternWord{1} << 17;
  EXPECT_EQ(w.FirstSetBit(), 2 * 64 + 17);
  w.lane[3] = PatternWord{1};  // later lane: must not win
  EXPECT_EQ(w.FirstSetBit(), 2 * 64 + 17);
  w.lane[0] = PatternWord{1} << 63;  // earliest lane wins even at bit 63
  EXPECT_EQ(w.FirstSetBit(), 63);
}

TEST(WideWord, AnyAndOperators) {
  EXPECT_FALSE(WideWord<2>::Zero().Any());
  EXPECT_TRUE(WideWord<2>::Ones().Any());
  WideWord<2> a = WideWord<2>::Zero();
  a.lane[1] = 0x10;
  EXPECT_TRUE(a.Any());
  EXPECT_EQ((a & WideWord<2>::Zero()), WideWord<2>::Zero());
  EXPECT_EQ((a | WideWord<2>::Zero()), a);
  EXPECT_EQ((a ^ a), WideWord<2>::Zero());
  EXPECT_EQ(~WideWord<2>::Zero(), WideWord<2>::Ones());
}

TEST(WideWord, BlockMaskWideCoversPartiallyFilledLastBlock) {
  // 130 patterns in a W=4 block: lanes 0-1 full, lane 2 holds 2 patterns,
  // lane 3 empty.
  const WideWord<4> mask = sim::BlockMaskWide<4>(130);
  EXPECT_EQ(mask.lane[0], ~PatternWord{0});
  EXPECT_EQ(mask.lane[1], ~PatternWord{0});
  EXPECT_EQ(mask.lane[2], PatternWord{0b11});
  EXPECT_EQ(mask.lane[3], PatternWord{0});

  EXPECT_EQ(sim::LanePatternCount(130, 0), 64u);
  EXPECT_EQ(sim::LanePatternCount(130, 1), 64u);
  EXPECT_EQ(sim::LanePatternCount(130, 2), 2u);
  EXPECT_EQ(sim::LanePatternCount(130, 3), 0u);
  EXPECT_EQ(sim::BlockMaskWide<4>(256), WideWord<4>::Ones());
}

TEST(WideWord, DispatchBlockWidthRejectsUnsupportedWidths) {
  for (const std::size_t w : sim::kSupportedBlockWidths) {
    EXPECT_EQ(sim::DispatchBlockWidth(w, [](auto width) {
      return static_cast<std::size_t>(width());
    }), w);
  }
  for (const std::size_t bad : {0u, 3u, 5u, 32u}) {
    EXPECT_THROW(sim::DispatchBlockWidth(bad, [](auto) {}),
                 std::invalid_argument);
  }
  // The error message must name the offending value and the supported set.
  try {
    sim::DispatchBlockWidth(5, [](auto) {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5"), std::string::npos) << what;
    EXPECT_NE(what.find(sim::SupportedBlockWidthList()), std::string::npos)
        << what;
  }
}

TEST(WideWord, PackPatternBlockWideMatchesNarrowPackingPerLane) {
  const std::size_t width = 9;
  const auto patterns = RandomPatterns(150, width, 3);
  const auto wide = sim::PackPatternBlockWide(patterns, 0, 150, width, 4);
  ASSERT_EQ(wide.size(), width * 4);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    const std::size_t count = sim::LanePatternCount(150, lane);
    const auto narrow =
        sim::PackPatternBlock(patterns, lane * 64, count, width);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(wide[i * 4 + lane], narrow[i]) << "input " << i << " lane "
                                               << lane;
    }
  }
}

// ---------------------------------------------------------------------------
// Logic and fault simulation: every lane equals the narrow block it stands
// for.

template <std::size_t W>
void ExpectWideSimMatchesNarrow(std::uint64_t seed) {
  auto nl = bistdse::testing::MakeSmallRandom(seed, 200);
  const std::size_t width = nl.CoreInputs().size();
  const std::size_t count = W * 64 - 13;  // partial last lane
  const auto patterns = RandomPatterns(count, width, seed + 1);
  const auto faults = sim::CollapsedFaults(nl);

  sim::FaultSimulatorT<W> wide(nl);
  wide.SetPatternBlock(sim::PackPatternBlockWide(patterns, 0, count, width, W));
  const WideWord<W> mask = sim::BlockMaskWide<W>(count);

  sim::FaultSimulator narrow(nl);
  for (std::size_t lane = 0; lane < W; ++lane) {
    const std::size_t lane_count = sim::LanePatternCount(count, lane);
    narrow.SetPatternBlock(
        sim::PackPatternBlock(patterns, lane * 64, lane_count, width));
    const PatternWord lane_mask = sim::BlockMask(lane_count);

    // Good-machine values per output.
    for (netlist::NodeId id : nl.CoreOutputs()) {
      EXPECT_EQ(wide.Good().BlockOf(id).lane[lane] & lane_mask,
                narrow.Good().ValueOf(id) & lane_mask)
          << "lane " << lane;
    }
    // Detect words and faulty responses per fault.
    for (std::size_t f = 0; f < faults.size(); f += 7) {
      ASSERT_EQ(wide.DetectBlock(faults[f]).lane[lane] & lane_mask,
                narrow.DetectWord(faults[f]) & lane_mask)
          << "fault " << f << " lane " << lane;
      const auto wide_resp = wide.FaultyResponse(faults[f]);
      const auto narrow_resp = narrow.FaultyResponse(faults[f]);
      ASSERT_EQ(wide_resp.size(), narrow_resp.size() * W);
      for (std::size_t j = 0; j < narrow_resp.size(); ++j) {
        ASSERT_EQ(wide_resp[j * W + lane] & lane_mask,
                  narrow_resp[j] & lane_mask)
            << "fault " << f << " output " << j << " lane " << lane;
      }
    }
  }
  // The unfilled tail of the last lane is don't-care (unfilled slots
  // simulate with all-zero inputs, exactly like the narrow path); masking
  // with BlockMaskWide must zero it.
  for (std::size_t f = 0; f < faults.size(); f += 11) {
    const WideWord<W> det = wide.DetectBlock(faults[f]) & mask;
    for (std::size_t l = 0; l < W; ++l) {
      EXPECT_EQ(det.lane[l] & ~sim::BlockMask(sim::LanePatternCount(count, l)),
                PatternWord{0});
    }
  }
}

TEST(WideFaultSim, LanesMatchNarrowBlocksW2) { ExpectWideSimMatchesNarrow<2>(21); }
TEST(WideFaultSim, LanesMatchNarrowBlocksW4) { ExpectWideSimMatchesNarrow<4>(22); }
TEST(WideFaultSim, LanesMatchNarrowBlocksW8) { ExpectWideSimMatchesNarrow<8>(23); }
TEST(WideFaultSim, LanesMatchNarrowBlocksW16) { ExpectWideSimMatchesNarrow<16>(32); }

TEST(WideFaultSim, CountDetectedFaultsIdenticalAcrossWidths) {
  auto nl = bistdse::testing::MakeSmallRandom(24, 250);
  const auto faults = sim::CollapsedFaults(nl);
  const auto patterns = RandomPatterns(330, nl.CoreInputs().size(), 25);

  const std::size_t expected =
      sim::CountDetectedFaults(nl, patterns, faults, 1);
  EXPECT_GT(expected, 0u);
  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    EXPECT_EQ(sim::CountDetectedFaults(nl, patterns, faults, w), expected)
        << "width " << w;
  }
}

TEST(WideFaultSim, ParallelCountIdenticalAcrossWidthsAndThreads) {
  auto nl = bistdse::testing::MakeSmallRandom(26, 250);
  const auto faults = sim::CollapsedFaults(nl);
  const auto patterns = RandomPatterns(200, nl.CoreInputs().size(), 27);

  const std::size_t expected =
      sim::CountDetectedFaults(nl, patterns, faults, 1);
  for (const std::size_t w : sim::kSupportedBlockWidths) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      EXPECT_EQ(
          sim::ParallelCountDetectedFaults(nl, patterns, faults, threads, w),
          expected)
          << "width " << w << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Consumers: profiles, dictionary, diagnosis.

bist::ProfileGeneratorConfig SmallProfileConfig(std::size_t block_width) {
  bist::ProfileGeneratorConfig config;
  config.prp_counts = {64, 256};
  config.coverage_targets_percent = {100.0, 95.0};
  config.fill_seeds = {11, 11};
  config.stumps.num_scan_chains = 8;
  config.stumps.max_chain_length = 16;
  config.threads = 1;
  config.block_width = block_width;
  return config;
}

TEST(WideProfileGeneration, TablesIdenticalAcrossBlockWidths) {
  auto nl = bistdse::testing::MakeSmallRandom(28, 300);
  bist::ProfileGenerator narrow(nl, SmallProfileConfig(1));
  const auto expected = narrow.GenerateAll();

  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    // Exercise both the warm-up split and the pure wide phase.
    for (const std::uint64_t warmup : {std::uint64_t{0}, std::uint64_t{96}}) {
      auto config = SmallProfileConfig(w);
      config.narrow_warmup_patterns = warmup;
      bist::ProfileGenerator generator(nl, config);
      const auto profiles = generator.GenerateAll();
      EXPECT_EQ(bist::FormatProfileTable(expected),
                bist::FormatProfileTable(profiles))
          << "width " << w << " warmup " << warmup;
      EXPECT_EQ(narrow.Stats().random_detected_at_max_prps,
                generator.Stats().random_detected_at_max_prps);
    }
  }
}

TEST(WideFaultDictionary, WindowsAndSignaturesIdenticalAcrossWidths) {
  auto nl = bistdse::testing::MakeSmallRandom(29, 200);
  bist::StumpsConfig config;
  config.num_scan_chains = 8;
  config.max_chain_length = 16;
  config.signature_window = 16;
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(std::min<std::size_t>(faults.size(), 120));

  const bist::FaultDictionary narrow(nl, config, 96, {}, faults, 1, 1);
  std::vector<bist::FailDatum> fail_data = {{1, 0xDEAD, 0}, {3, 0xBEEF, 0}};
  const auto expected_rank = narrow.Diagnose(fail_data, 10);

  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    const bist::FaultDictionary wide(nl, config, 96, {}, faults, 1, w);
    ASSERT_EQ(wide.WindowCount(), narrow.WindowCount());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const auto a = narrow.WindowsOf(f);
      const auto b = wide.WindowsOf(f);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "fault " << f << " width " << w;
    }
    // Signature evidence must rank identically, score for score.
    const auto ranked = wide.Diagnose(fail_data, 10);
    ASSERT_EQ(ranked.size(), expected_rank.size());
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].fault, expected_rank[i].fault) << "width " << w;
      EXPECT_EQ(ranked[i].score, expected_rank[i].score) << "width " << w;
    }
  }
}

TEST(WideDiagnosis, RankingIdenticalAcrossWidths) {
  auto nl = bistdse::testing::MakeSmallRandom(30, 200);
  bist::StumpsConfig config;
  config.num_scan_chains = 8;
  config.max_chain_length = 16;
  config.signature_window = 16;
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(std::min<std::size_t>(faults.size(), 80));
  std::vector<bist::FailDatum> fail_data = {{0, 0x1234, 0}, {2, 0x5678, 0}};

  const bist::SignatureDiagnosis narrow(nl, config, 96, {}, 1);
  const auto expected = narrow.Diagnose(fail_data, faults, 15);

  for (const std::size_t w : {2u, 4u, 8u, 16u}) {
    const bist::SignatureDiagnosis wide(nl, config, 96, {}, w);
    const auto ranked = wide.Diagnose(fail_data, faults, 15);
    ASSERT_EQ(ranked.size(), expected.size()) << "width " << w;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].fault, expected[i].fault) << "width " << w;
      EXPECT_EQ(ranked[i].score, expected[i].score) << "width " << w;
    }
  }
}

TEST(WideDiagnosisEval, AccuracyIdenticalAcrossWidths) {
  auto nl = bistdse::testing::MakeSmallRandom(31, 200);
  bist::StumpsConfig config;
  config.num_scan_chains = 8;
  config.max_chain_length = 16;
  config.signature_window = 16;

  bist::DiagnosisEvalOptions options;
  options.num_random_patterns = 64;
  options.max_samples = 10;
  options.threads = 1;
  options.block_width = 1;
  const auto expected = bist::EvaluateDiagnosisAccuracy(nl, config, options);

  for (const std::size_t w : {4u, 16u}) {
    options.block_width = w;
    const auto accuracy = bist::EvaluateDiagnosisAccuracy(nl, config, options);
    EXPECT_EQ(accuracy.injected, expected.injected) << "width " << w;
    EXPECT_EQ(accuracy.escaped, expected.escaped) << "width " << w;
    EXPECT_EQ(accuracy.top1, expected.top1) << "width " << w;
    EXPECT_EQ(accuracy.topk, expected.topk) << "width " << w;
    EXPECT_EQ(accuracy.mean_rank, expected.mean_rank) << "width " << w;
  }
}

}  // namespace
}  // namespace bistdse
