#include <gtest/gtest.h>

#include <sstream>

#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/report.hpp"
#include "moea/genotype.hpp"
#include "sim/fault_sim.hpp"
#include "test_helpers.hpp"

namespace bistdse {
namespace {

TEST(CountDetectedFaults, FullCoverageOnC17Exhaustive) {
  auto nl = testing::MakeC17();
  std::vector<sim::BitPattern> patterns;
  for (int p = 0; p < 32; ++p) {
    sim::BitPattern pat(5);
    for (int i = 0; i < 5; ++i) pat[i] = (p >> i) & 1;
    patterns.push_back(pat);
  }
  const auto faults = sim::CollapsedFaults(nl);
  EXPECT_EQ(sim::CountDetectedFaults(nl, patterns, faults), faults.size());
  EXPECT_EQ(sim::CountDetectedFaults(nl, {}, faults), 0u);
}

TEST(OnePointCrossover, RespectsCutSemantics) {
  util::SplitMix64 rng(3);
  moea::Genotype a = moea::RandomGenotype(50, rng);
  moea::Genotype b = moea::RandomGenotype(50, rng);
  const auto child = moea::OnePointCrossover(a, b, rng);
  // The child must be a prefix of a followed by a suffix of b.
  std::size_t cut = 0;
  while (cut < 50 && child.priorities[cut] == a.priorities[cut]) ++cut;
  for (std::size_t i = cut; i < 50; ++i) {
    EXPECT_EQ(child.priorities[i], b.priorities[i]) << i;
    EXPECT_EQ(child.phases[i], b.phases[i]) << i;
  }
  moea::Genotype mismatched = moea::RandomGenotype(10, rng);
  EXPECT_THROW(moea::OnePointCrossover(a, mismatched, rng),
               std::invalid_argument);
}

TEST(SummarizeFront, NamesHeadlineAndCounts) {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(4);
  auto cs = casestudy::BuildCaseStudy(profiles, 42);
  dse::ExplorationConfig cfg;
  cfg.evaluations = 400;
  cfg.population_size = 20;
  cfg.seed = 2;
  dse::Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();

  const std::string summary = dse::SummarizeFront(result);
  EXPECT_NE(summary.find("## Exploration summary"), std::string::npos);
  EXPECT_NE(summary.find("non-dominated implementations: "),
            std::string::npos);
  EXPECT_NE(summary.find("headline: "), std::string::npos);
  EXPECT_NE(summary.find("shut-off <= 20 s: "), std::string::npos);

  // A quality bar nothing reaches produces the fallback line.
  const std::string impossible = dse::SummarizeFront(result, 1000.0);
  EXPECT_NE(impossible.find("no design reaches"), std::string::npos);
}

}  // namespace
}  // namespace bistdse
