#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/refine.hpp"
#include "moea/indicators.hpp"

namespace bistdse::dse {
namespace {

casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(8);
  return casestudy::BuildCaseStudy(profiles, 42);
}

double FrontHypervolume(std::span<const ExplorationEntry> front) {
  std::vector<moea::ObjectiveVector> pts;
  for (const auto& e : front) {
    auto v = e.objectives.ToMinimizationVector();
    v[1] = std::min(v[1], 1e7);
    pts.push_back(v);
  }
  return moea::Hypervolume(pts, {0.0, 1e7, 2000.0});
}

TEST(Refine, ImprovesOrPreservesFront) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 800;
  cfg.population_size = 32;
  cfg.seed = 4;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto explored = explorer.Run();
  ASSERT_GT(explored.pareto.size(), 3u);

  RefineOptions opts;
  opts.max_evaluations = 3000;
  opts.seed = 9;
  const auto refined =
      RefineFront(cs.spec, cs.augmentation, explored.pareto, opts);
  EXPECT_GT(refined.evaluations, 0u);

  // Hypervolume must not regress, and the refined set must be internally
  // non-dominated.
  EXPECT_GE(FrontHypervolume(refined.pareto) + 1e-9,
            FrontHypervolume(explored.pareto));
  for (std::size_t i = 0; i < refined.pareto.size(); ++i) {
    for (std::size_t j = 0; j < refined.pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          moea::Dominates(refined.pareto[i].objectives.ToMinimizationVector(),
                          refined.pareto[j].objectives.ToMinimizationVector()));
    }
  }
}

TEST(Refine, NeighborsAreAllFeasible) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 6;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto explored = explorer.Run();

  RefineOptions opts;
  opts.max_evaluations = 1500;
  const auto refined =
      RefineFront(cs.spec, cs.augmentation, explored.pareto, opts);
  for (const auto& entry : refined.pareto) {
    const auto violations =
        model::ValidateImplementation(cs.spec, entry.implementation);
    EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
  }
}

TEST(Refine, RespectsEvaluationBudget) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 6;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto explored = explorer.Run();

  RefineOptions opts;
  opts.max_evaluations = 50;
  const auto refined =
      RefineFront(cs.spec, cs.augmentation, explored.pareto, opts);
  EXPECT_LE(refined.evaluations, 50u);
}

TEST(Refine, DeterministicForFixedSeed) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 6;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto explored = explorer.Run();

  RefineOptions opts;
  opts.max_evaluations = 800;
  opts.seed = 3;
  const auto a = RefineFront(cs.spec, cs.augmentation, explored.pareto, opts);
  const auto b = RefineFront(cs.spec, cs.augmentation, explored.pareto, opts);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives.ToMinimizationVector(),
              b.pareto[i].objectives.ToMinimizationVector());
  }
}

}  // namespace
}  // namespace bistdse::dse
