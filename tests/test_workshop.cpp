// Workshop-repair consistency (paper §I + §IV.B): the success rate of
// identifying a faulty ECU equals the deployed profile's fault coverage.
// This test closes the end-to-end loop over encode -> expand -> session:
// actual STUMPS sessions running the generated random + deterministic
// patterns detect injected defects at (almost exactly) the rate the profile
// generator reported as c(b).
#include <gtest/gtest.h>

#include "bist/profile_generator.hpp"
#include "bist/stumps.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

TEST(WorkshopRepair, SessionDetectionRateMatchesProfileCoverage) {
  auto nl = bistdse::testing::MakeSmallRandom(99, 300);

  ProfileGeneratorConfig config;
  config.stumps.signature_window = 32;
  config.podem_backtrack_limit = 100;
  ProfileGenerator generator(nl, config);
  const auto generated = generator.GenerateOne(256, 100.0, 11);
  ASSERT_GT(generated.profile.fault_coverage_percent, 90.0);
  ASSERT_GT(generated.encoded_patterns.size(), 0u);

  // Run real sessions with the deployable artifacts against sampled faults.
  StumpsSession session(nl, config.stumps);
  const auto faults = sim::CollapsedFaults(nl);
  std::size_t sampled = 0, detected = 0;
  for (std::size_t fi = 0; fi < faults.size(); fi += 13) {
    ++sampled;
    const auto result =
        session.Run(256, generated.encoded_patterns, faults[fi]);
    detected += result.pass ? 0 : 1;
  }
  const double measured = 100.0 * detected / sampled;
  // Sampling every 13th fault: allow a few percent of statistical slack.
  EXPECT_NEAR(measured, generated.profile.fault_coverage_percent, 4.0)
      << detected << "/" << sampled;
}

TEST(WorkshopRepair, LeanProfileDetectsFewerDefects) {
  auto nl = bistdse::testing::MakeSmallRandom(99, 300);
  ProfileGeneratorConfig config;
  config.stumps.signature_window = 32;
  ProfileGenerator generator(nl, config);
  const auto thorough = generator.GenerateOne(256, 100.0, 11);
  const auto lean = generator.GenerateOne(256, 90.0, 11);
  EXPECT_GE(thorough.profile.fault_coverage_percent,
            lean.profile.fault_coverage_percent);
  EXPECT_GE(thorough.encoded_patterns.size(), lean.encoded_patterns.size());

  StumpsSession session(nl, config.stumps);
  const auto faults = sim::CollapsedFaults(nl);
  auto rate = [&](const GeneratedProfile& g) {
    std::size_t sampled = 0, detected = 0;
    for (std::size_t fi = 0; fi < faults.size(); fi += 29) {
      ++sampled;
      detected += session.Run(256, g.encoded_patterns, faults[fi]).pass ? 0 : 1;
    }
    return 100.0 * detected / sampled;
  };
  EXPECT_GE(rate(thorough) + 1e-9, rate(lean));
}

}  // namespace
}  // namespace bistdse::bist
