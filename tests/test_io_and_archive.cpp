#include <gtest/gtest.h>

#include <sstream>

#include "moea/epsilon_archive.hpp"
#include "sim/pattern_io.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse {
namespace {

TEST(PatternIo, RoundTrip) {
  util::SplitMix64 rng(1);
  std::vector<sim::BitPattern> patterns;
  for (int i = 0; i < 10; ++i) {
    sim::BitPattern p(37);
    for (auto& b : p) b = rng.Chance(0.5);
    patterns.push_back(p);
  }
  const std::string text = sim::PatternsToString(patterns);
  const auto parsed = sim::PatternsFromString(text, 37);
  EXPECT_EQ(parsed, patterns);
}

TEST(PatternIo, RejectsMalformedLines) {
  EXPECT_THROW(sim::PatternsFromString("0101\n", 5), std::runtime_error);
  EXPECT_THROW(sim::PatternsFromString("01x01\n", 5), std::runtime_error);
  EXPECT_TRUE(sim::PatternsFromString("# only a comment\n\n", 5).empty());
}

TEST(FaultIo, RoundTripOnC17) {
  auto nl = testing::MakeC17();
  const auto faults = sim::CollapsedFaults(nl);
  std::ostringstream out;
  sim::WriteFaults(nl, faults, out);
  std::istringstream in(out.str());
  const auto parsed = sim::ReadFaults(nl, in);
  ASSERT_EQ(parsed.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(parsed[i], faults[i]) << i;
  }
}

TEST(FaultIo, RoundTripWithGeneratedNames) {
  auto nl = testing::MakeSmallRandom(3, 120);
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(50);
  std::ostringstream out;
  sim::WriteFaults(nl, faults, out);
  std::istringstream in(out.str());
  const auto parsed = sim::ReadFaults(nl, in);
  ASSERT_EQ(parsed.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(parsed[i], faults[i]) << i;
  }
}

TEST(FaultIo, RejectsBadEntries) {
  auto nl = testing::MakeC17();
  std::istringstream bad1("nope/SA1\n");
  EXPECT_THROW(sim::ReadFaults(nl, bad1), std::runtime_error);
  std::istringstream bad2("22/SAx\n");
  EXPECT_THROW(sim::ReadFaults(nl, bad2), std::runtime_error);
  std::istringstream bad3("22.in9/SA0\n");
  EXPECT_THROW(sim::ReadFaults(nl, bad3), std::runtime_error);
}

TEST(EpsilonArchive, BoundsArchiveSize) {
  moea::EpsilonArchive archive({1.0, 1.0});
  util::SplitMix64 rng(5);
  // 1000 random points on/near the front x + y = 100 within a 100x100 box:
  // with eps 1 the archive holds at most ~100 boxes.
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UnitReal() * 100.0;
    archive.Offer({x, 100.0 - x + rng.UnitReal()}, i);
  }
  EXPECT_LE(archive.Size(), 110u);
  EXPECT_GE(archive.Size(), 30u);
}

TEST(EpsilonArchive, KeepsDominanceInvariant) {
  moea::EpsilonArchive archive({0.5, 0.5});
  util::SplitMix64 rng(7);
  for (int i = 0; i < 300; ++i) {
    archive.Offer({rng.UnitReal() * 10, rng.UnitReal() * 10}, i);
  }
  const auto entries = archive.Entries();
  for (const auto& a : entries) {
    for (const auto& b : entries) {
      if (&a == &b) continue;
      // No entry may epsilon-dominate another: their boxes are mutually
      // non-dominated by construction.
      EXPECT_FALSE(moea::Dominates(
          {a.objectives[0] + 0.5, a.objectives[1] + 0.5}, b.objectives))
          << "box dominance violated";
    }
  }
}

TEST(EpsilonArchive, SameBoxKeepsBetterPoint) {
  moea::EpsilonArchive archive({10.0, 10.0});
  EXPECT_TRUE(archive.Offer({5.0, 5.0}, 1));
  EXPECT_FALSE(archive.Offer({6.0, 6.0}, 2));  // same box, dominated
  EXPECT_TRUE(archive.Offer({4.0, 4.0}, 3));   // same box, better
  ASSERT_EQ(archive.Size(), 1u);
  EXPECT_EQ(archive.Entries()[0].payload, 3u);
}

TEST(EpsilonArchive, RejectsBadConfig) {
  EXPECT_THROW(moea::EpsilonArchive({}), std::invalid_argument);
  EXPECT_THROW(moea::EpsilonArchive({1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace bistdse
