#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/partial_networking.hpp"
#include "dse/session_plan.hpp"

namespace bistdse::dse {
namespace {

casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(4);
  return casestudy::BuildCaseStudy(profiles, 42);
}

model::Implementation Forced(const casestudy::CaseStudy& cs,
                             SatDecoder& decoder, bool local) {
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[3];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_local = mappings[m].resource == ecu;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  return *decoder.Decode(g);
}

TEST(SessionPlan, PhasesAreContiguousAndConsistentWithEq5) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/false);
  SessionPlanOptions options;
  const auto plans = PlanSessions(cs.spec, cs.augmentation, impl, options);
  ASSERT_FALSE(plans.empty());

  const auto pn = AnalyzePartialNetworking(cs.spec, cs.augmentation, impl);
  ASSERT_EQ(plans.size(), pn.sessions.size());

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto& plan = plans[i];
    // Phases tile [0, total] without gaps.
    double t = 0.0;
    for (const auto& phase : plan.phases) {
      EXPECT_DOUBLE_EQ(phase.start_ms, t);
      t += phase.duration_ms;
    }
    EXPECT_DOUBLE_EQ(plan.total_ms, t);
    // Download + test phases equal the Eq. 5 session time of the same ECU.
    EXPECT_FALSE(plan.patterns_local);
    EXPECT_NEAR(plan.phases[0].duration_ms + plan.phases[1].duration_ms,
                pn.sessions[i].session_ms, 1e-9);
    EXPECT_GT(plan.download_frames, 0u);
    EXPECT_GT(plan.fail_data_frames, 0u);
  }
}

TEST(SessionPlan, LocalStorageSkipsDownload) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/true);
  const auto plans = PlanSessions(cs.spec, cs.augmentation, impl);
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    EXPECT_TRUE(plan.patterns_local);
    EXPECT_EQ(plan.download_frames, 0u);
    EXPECT_EQ(plan.phases.front().name.find("download"), std::string::npos);
    // No download phase: the remainder is the 1.71 ms session plus the
    // fixed 638 B fail-data upload over the ECU's (possibly slow) slots.
    ASSERT_EQ(plan.phases.size(), 3u);
    EXPECT_DOUBLE_EQ(plan.phases[0].duration_ms, 1.71);
    EXPECT_LT(plan.total_ms, 1e5);
  }
}

TEST(SessionPlan, FormatNamesEcuAndPhases) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, false);
  const auto plans = PlanSessions(cs.spec, cs.augmentation, impl);
  ASSERT_FALSE(plans.empty());
  const std::string text = FormatSessionPlan(cs.spec, plans.front());
  EXPECT_NE(text.find("profile 4"), std::string::npos);
  EXPECT_NE(text.find("pattern download"), std::string::npos);
  EXPECT_NE(text.find("state restore"), std::string::npos);
}

}  // namespace
}  // namespace bistdse::dse
