#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"

namespace bistdse::dse {
namespace {

/// Two profiles with an SAF-vs-TDF trade: A has the better stuck-at
/// coverage, B the better transition coverage; everything else equal.
std::vector<bist::BistProfile> TradeoffProfiles() {
  bist::BistProfile a;
  a.profile_number = 1;
  a.num_random_patterns = 1000;
  a.fault_coverage_percent = 99.0;
  a.transition_coverage_percent = 60.0;
  a.runtime_ms = 5.0;
  a.data_bytes = 500000;
  bist::BistProfile b = a;
  b.profile_number = 2;
  b.fault_coverage_percent = 96.0;
  b.transition_coverage_percent = 90.0;
  return {a, b};
}

TEST(DualFaultModel, FourthObjectivePreservesTdfTradePoints) {
  auto cs = casestudy::BuildCaseStudy(TradeoffProfiles(), 42);

  auto run = [&](bool include_tdf) {
    ExplorationConfig cfg;
    cfg.evaluations = 1500;
    cfg.population_size = 32;
    cfg.seed = 3;
    cfg.include_transition_objective = include_tdf;
    Explorer explorer(cs.spec, cs.augmentation, cfg);
    return explorer.Run();
  };

  const auto without = run(false);
  const auto with = run(true);

  // In 3-objective mode profile B (lower stuck-at quality, same cost and
  // runtime) is dominated whenever profile A is available; in 4-objective
  // mode its superior TDF quality keeps it on the front.
  auto max_tdf = [](const ExplorationResult& r) {
    double best = 0.0;
    for (const auto& e : r.pareto) {
      best = std::max(best, e.objectives.transition_quality_percent);
    }
    return best;
  };
  // With the TDF objective, designs approaching all-B (TDF ~90 per covered
  // ECU) must appear.
  EXPECT_GT(max_tdf(with), max_tdf(without) + 5.0);

  // Dimensionality is consistent within each run.
  for (const auto& e : with.pareto) {
    EXPECT_EQ(e.objectives
                  .ToMinimizationVector(/*include_transition_quality=*/true)
                  .size(),
              4u);
  }
}

TEST(DualFaultModel, TransitionQualityAveragesLikeEq4) {
  auto cs = casestudy::BuildCaseStudy(TradeoffProfiles(), 42);
  ExplorationConfig cfg;
  cfg.evaluations = 200;
  cfg.population_size = 16;
  cfg.seed = 9;
  cfg.include_transition_objective = true;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  for (const auto& e : result.pareto) {
    const auto& o = e.objectives;
    // TDF quality is bounded by (#BIST ECUs * 90) / allocated ECUs.
    if (o.ecus_allocated == 0) continue;
    EXPECT_LE(o.transition_quality_percent,
              90.0 * o.ecus_with_bist / o.ecus_allocated + 1e-9);
  }
}

}  // namespace
}  // namespace bistdse::dse
