#include <gtest/gtest.h>

#include "bist/diagnosis.hpp"
#include "bist/pattern_source.hpp"
#include "bist/phase_shifter.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

TEST(PhaseShifter, Deterministic) {
  PhaseShifter a(100, 32, 7), b(100, 32, 7);
  Lfsr la(Lfsr::DefaultPolynomial(32), 99), lb(Lfsr::DefaultPolynomial(32), 99);
  EXPECT_EQ(a.EmitPattern(la, 770), b.EmitPattern(lb, 770));
}

TEST(PhaseShifter, ChainsAreDecorrelated) {
  // Without the phase shifter, adjacent chains fed by serial unrolling see
  // shifted copies of the same stream; with it, per-chain streams must be
  // (pairwise) different.
  PhaseShifter shifter(8, 32, 3);
  Lfsr lfsr(Lfsr::DefaultPolynomial(32), 5);
  constexpr std::size_t kWidth = 8 * 32;  // 8 chains x 32 cells
  const auto pattern = shifter.EmitPattern(lfsr, kWidth);
  for (int c1 = 0; c1 < 8; ++c1) {
    for (int c2 = c1 + 1; c2 < 8; ++c2) {
      bool differ = false;
      for (int s = 0; s < 32; ++s) {
        differ |= pattern[c1 * 32 + s] != pattern[c2 * 32 + s];
      }
      EXPECT_TRUE(differ) << "chains " << c1 << "/" << c2 << " identical";
    }
  }
}

TEST(PhaseShifter, OutputsAreLinearInSeed) {
  // stream(seed_a XOR seed_b) == stream(a) XOR stream(b): required for
  // reseeding encodability.
  const auto taps = Lfsr::DefaultPolynomial(24);
  PhaseShifter shifter(10, 24, 11);
  std::vector<std::uint8_t> sa(24, 0), sb(24, 0), sx(24, 0);
  sa[1] = sa[9] = 1;
  sb[9] = sb[17] = 1;
  for (int i = 0; i < 24; ++i) sx[i] = sa[i] ^ sb[i];
  Lfsr la(taps, sa), lb(taps, sb), lx(taps, sx);
  const auto pa = shifter.EmitPattern(la, 100);
  const auto pb = shifter.EmitPattern(lb, 100);
  const auto px = shifter.EmitPattern(lx, 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(px[i], pa[i] ^ pb[i]) << "position " << i;
  }
}

TEST(PhaseShifter, RejectsDegenerateConfig) {
  EXPECT_THROW(PhaseShifter(0, 32), std::invalid_argument);
  EXPECT_THROW(PhaseShifter(4, 2), std::invalid_argument);
}

TEST(PatternSource, MatchesPlainLfsrWhenShifterOff) {
  StumpsConfig config;
  config.use_phase_shifter = false;
  PatternSource source(config, 64);
  Lfsr reference(Lfsr::DefaultPolynomial(config.prpg_degree), config.prpg_seed);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(source.Next(), reference.Emit(64));
  }
}

TEST(PatternSource, ShifterChangesTheStream) {
  StumpsConfig plain;
  StumpsConfig shifted = plain;
  shifted.use_phase_shifter = true;
  PatternSource a(plain, 200), b(shifted, 200);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(PhaseShifterIntegration, SessionAndDiagnosisStayConsistent) {
  // The whole inject -> session -> diagnose loop must work identically when
  // patterns flow through the phase shifter (every module replays the same
  // stream from the shared PatternSource).
  auto nl = bistdse::testing::MakeSmallRandom(91, 250);
  StumpsConfig config;
  config.signature_window = 8;
  config.use_phase_shifter = true;
  config.num_scan_chains = 16;

  StumpsSession session(nl, config);
  const auto faults = sim::CollapsedFaults(nl);
  const auto& injected = faults[faults.size() / 5];
  const auto result = session.Run(512, {}, injected);
  if (result.fail_data.empty()) GTEST_SKIP() << "fault escapes";

  SignatureDiagnosis diagnosis(nl, config, 512, {});
  const auto ranked = diagnosis.Diagnose(result.fail_data, faults, 5);
  bool hit = false;
  for (const auto& c : ranked) hit |= c.fault == injected;
  EXPECT_TRUE(hit);
}

TEST(PhaseShifterIntegration, CoverageComparableToSerialUnrolling) {
  // Fault coverage after N patterns should be in the same ballpark for both
  // feeding schemes (the phase shifter exists for hardware cost, not
  // coverage, on random-logic CUTs).
  auto nl = bistdse::testing::MakeSmallRandom(93, 300);
  const auto faults = sim::CollapsedFaults(nl);
  auto coverage = [&](bool use_shifter) {
    StumpsConfig config;
    config.use_phase_shifter = use_shifter;
    config.num_scan_chains = 16;
    PatternSource source(config, nl.CoreInputs().size());
    sim::FaultSimulator fsim(nl);
    std::vector<sim::StuckAtFault> remaining(faults.begin(), faults.end());
    for (int block = 0; block < 8; ++block) {
      std::vector<sim::BitPattern> patterns;
      for (int k = 0; k < 64; ++k) patterns.push_back(source.Next());
      fsim.SetPatternBlock(sim::PackPatternBlock(
          patterns, 0, patterns.size(), nl.CoreInputs().size()));
      std::vector<sim::StuckAtFault> still;
      for (const auto& f : remaining) {
        if (!fsim.DetectWord(f)) still.push_back(f);
      }
      remaining = std::move(still);
    }
    return 1.0 - static_cast<double>(remaining.size()) / faults.size();
  };
  const double serial = coverage(false);
  const double shifted = coverage(true);
  EXPECT_NEAR(serial, shifted, 0.05);
  EXPECT_GT(shifted, 0.8);
}

}  // namespace
}  // namespace bistdse::bist
