#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

// Independent reference: recursive single-pattern faulty evaluation.
class RefEvaluator {
 public:
  RefEvaluator(const Netlist& nl, const StuckAtFault& fault,
               const std::vector<std::uint8_t>& inputs)
      : nl_(nl), fault_(fault) {
    const auto core = nl.CoreInputs();
    for (std::size_t i = 0; i < core.size(); ++i) values_[core[i]] = inputs[i];
  }

  /// Value of `node` in the faulty circuit.
  std::uint8_t Eval(NodeId node) {
    if (fault_.IsStem() && node == fault_.node) return fault_.stuck_value;
    auto it = values_.find(node);
    if (it != values_.end()) return it->second;
    const auto fanins = nl_.FaninsOf(node);
    std::vector<std::uint8_t> vals;
    for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
      std::uint8_t v = Eval(fanins[pin]);
      if (node == fault_.node && static_cast<int>(pin) == fault_.fanin_index)
        v = fault_.stuck_value;
      vals.push_back(v);
    }
    std::uint8_t out = 0;
    switch (nl_.TypeOf(node)) {
      case GateType::Buf: out = vals[0]; break;
      case GateType::Not: out = !vals[0]; break;
      case GateType::And:
      case GateType::Nand: {
        out = 1;
        for (auto v : vals) out &= v;
        if (nl_.TypeOf(node) == GateType::Nand) out = !out;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        out = 0;
        for (auto v : vals) out |= v;
        if (nl_.TypeOf(node) == GateType::Nor) out = !out;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        out = 0;
        for (auto v : vals) out ^= v;
        if (nl_.TypeOf(node) == GateType::Xnor) out = !out;
        break;
      }
      default: ADD_FAILURE() << "unexpected source node"; break;
    }
    values_[node] = out;
    return out;
  }

  /// True iff the fault is detected at a PO or PPO by this pattern.
  bool Detects(const std::vector<std::uint8_t>& good_outputs) {
    const auto outs = nl_.CoreOutputs();
    const auto flops = nl_.Flops();
    const std::size_t num_pos = nl_.PrimaryOutputs().size();
    for (std::size_t j = 0; j < outs.size(); ++j) {
      std::uint8_t faulty;
      if (!fault_.IsStem() && nl_.TypeOf(fault_.node) == GateType::Dff &&
          j >= num_pos && flops[j - num_pos] == fault_.node) {
        faulty = fault_.stuck_value;  // captured bit stuck
      } else {
        faulty = Eval(outs[j]);
      }
      if (faulty != good_outputs[j]) return true;
    }
    return false;
  }

 private:
  const Netlist& nl_;
  StuckAtFault fault_;
  std::map<NodeId, std::uint8_t> values_;
};

std::vector<std::uint8_t> GoodOutputs(const Netlist& nl,
                                      const std::vector<std::uint8_t>& inputs) {
  LogicSimulator simulator(nl);
  std::vector<PatternWord> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    words[i] = inputs[i] ? ~PatternWord{0} : 0;
  simulator.Simulate(words);
  std::vector<std::uint8_t> out;
  for (NodeId id : nl.CoreOutputs())
    out.push_back(static_cast<std::uint8_t>(simulator.ValueOf(id) & 1));
  return out;
}

TEST(FaultSim, C17EveryCollapsedFaultDetectable) {
  auto nl = testing::MakeC17();
  FaultSimulator fsim(nl);
  // All 32 patterns in one block.
  std::vector<PatternWord> words(5, 0);
  for (int p = 0; p < 32; ++p) {
    for (int i = 0; i < 5; ++i) {
      if ((p >> i) & 1) words[i] |= PatternWord{1} << p;
    }
  }
  fsim.SetPatternBlock(words);
  const PatternWord mask = BlockMask(32);
  for (const auto& f : CollapsedFaults(nl)) {
    EXPECT_NE(fsim.DetectWord(f) & mask, 0u)
        << ToString(nl, f) << " should be detectable in c17";
  }
}

TEST(FaultSim, MatchesRecursiveReferenceOnC17) {
  auto nl = testing::MakeC17();
  FaultSimulator fsim(nl);
  for (int p = 0; p < 32; ++p) {
    std::vector<std::uint8_t> inputs(5);
    for (int i = 0; i < 5; ++i) inputs[i] = (p >> i) & 1;
    std::vector<PatternWord> words(5);
    for (int i = 0; i < 5; ++i) words[i] = inputs[i] ? ~PatternWord{0} : 0;
    fsim.SetPatternBlock(words);
    const auto good = GoodOutputs(nl, inputs);
    for (const auto& f : AllFaults(nl)) {
      RefEvaluator ref(nl, f, inputs);
      const bool expected = ref.Detects(good);
      const bool actual = (fsim.DetectWord(f) & 1) != 0;
      EXPECT_EQ(actual, expected) << ToString(nl, f) << " pattern " << p;
    }
  }
}

TEST(FaultSim, MatchesRecursiveReferenceOnRandomCircuits) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto nl = bistdse::testing::MakeSmallRandom(seed, 150);
    FaultSimulator fsim(nl);
    util::SplitMix64 rng(seed * 1000 + 5);
    const std::size_t width = nl.CoreInputs().size();
    auto faults = CollapsedFaults(nl);

    for (int trial = 0; trial < 4; ++trial) {
      std::vector<std::uint8_t> inputs(width);
      for (auto& b : inputs) b = rng.Chance(0.5);
      std::vector<PatternWord> words(width);
      for (std::size_t i = 0; i < width; ++i)
        words[i] = inputs[i] ? ~PatternWord{0} : 0;
      fsim.SetPatternBlock(words);
      const auto good = GoodOutputs(nl, inputs);

      // Sample a subset of faults for speed.
      for (std::size_t fi = 0; fi < faults.size(); fi += 7) {
        RefEvaluator ref(nl, faults[fi], inputs);
        const bool expected = ref.Detects(good);
        const bool actual = (fsim.DetectWord(faults[fi]) & 1) != 0;
        EXPECT_EQ(actual, expected)
            << ToString(nl, faults[fi]) << " seed " << seed;
      }
    }
  }
}

TEST(FaultSim, FaultyResponseConsistentWithDetectWord) {
  auto nl = bistdse::testing::MakeSmallRandom(5, 200);
  FaultSimulator fsim(nl);
  util::SplitMix64 rng(77);
  const std::size_t width = nl.CoreInputs().size();
  std::vector<PatternWord> words(width);
  for (auto& w : words) w = rng();
  fsim.SetPatternBlock(words);

  auto faults = CollapsedFaults(nl);
  const auto outs = nl.CoreOutputs();
  for (std::size_t fi = 0; fi < faults.size(); fi += 11) {
    const PatternWord det = fsim.DetectWord(faults[fi]);
    const auto response = fsim.FaultyResponse(faults[fi]);
    PatternWord diff = 0;
    // Flop-D branch faults corrupt the PPO slot even where the driver node
    // value matches; reconstruct the difference per slot.
    const std::size_t num_pos = nl.PrimaryOutputs().size();
    for (std::size_t j = 0; j < outs.size(); ++j) {
      PatternWord goodv = fsim.Good().ValueOf(outs[j]);
      if (!faults[fi].IsStem() &&
          nl.TypeOf(faults[fi].node) == GateType::Dff && j >= num_pos &&
          nl.Flops()[j - num_pos] == faults[fi].node) {
        // handled below via response comparison
      }
      diff |= response[j] ^ goodv;
    }
    EXPECT_EQ(diff, det) << ToString(nl, faults[fi]);
  }
}

TEST(FaultSim, UndetectableFaultNeverFires) {
  // y = OR(a, NOT(a)) is constant 1; its SA1 stem is undetectable.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId n = nl.AddGate(GateType::Not, {a});
  const NodeId y = nl.AddGate(GateType::Or, {a, n});
  nl.MarkOutput(y);
  nl.Finalize();
  FaultSimulator fsim(nl);
  std::vector<PatternWord> words = {0b01};  // patterns a=1, a=0
  fsim.SetPatternBlock(words);
  EXPECT_EQ(fsim.DetectWord({y, -1, true}) & 0b11, 0u);
  EXPECT_NE(fsim.DetectWord({y, -1, false}) & 0b11, 0u);
}

}  // namespace
}  // namespace bistdse::sim
