// Shared fixtures for bistdse tests.
#pragma once

#include <string>

#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_circuit.hpp"

namespace bistdse::testing {

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
inline const char* kC17 = R"(
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

inline netlist::Netlist MakeC17() {
  return netlist::ParseBenchString(kC17);
}

/// A small sequential circuit: 2 inputs, 1 output, 2 flops forming a toggle
/// structure.
inline const char* kTinySeq = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(a, q1)
d1 = AND(b, q0)
y = OR(q0, q1)
)";

inline netlist::Netlist MakeSmallRandom(std::uint64_t seed = 7,
                                        std::uint32_t gates = 300) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 8;
  spec.num_flops = 24;
  spec.num_gates = gates;
  spec.num_hard_blocks = 2;
  spec.hard_block_width = 6;
  spec.seed = seed;
  return netlist::GenerateRandomCircuit(spec);
}

}  // namespace bistdse::testing
