// Shared fixtures for bistdse tests.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "arch/topology.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_circuit.hpp"

namespace bistdse::testing {

/// Structural validity of a topology — canonical case studies and generated
/// corpus members alike: every handle indexes a resource of the right kind,
/// every ECU/sensor/actuator hangs off exactly one bus, every ECU reaches
/// the gateway in one hop (ecu -> bus -> gateway), the functional graph is
/// non-trivial, and the BIST augmentation (when present) carries one
/// program per (ECU, profile) with the collect task on the gateway.
inline void ExpectValidTopology(const arch::Topology& topo) {
  const auto& graph = topo.spec.Architecture();
  ASSERT_FALSE(topo.ecus.empty());
  ASSERT_FALSE(topo.buses.empty());
  EXPECT_GT(topo.functional_task_count, 0u);
  EXPECT_GT(topo.functional_message_count, 0u);
  EXPECT_NO_THROW(topo.spec.Validate());

  for (model::ResourceId bus : topo.buses) {
    EXPECT_EQ(graph.GetResource(bus).kind, model::ResourceKind::Bus);
    EXPECT_GT(graph.GetResource(bus).bus_bitrate_bps, 0.0);
  }
  const auto on_one_bus = [&](model::ResourceId r,
                              model::ResourceKind kind) {
    EXPECT_EQ(graph.GetResource(r).kind, kind);
    std::size_t buses = 0;
    for (model::ResourceId n : graph.Neighbors(r)) {
      buses += graph.GetResource(n).kind == model::ResourceKind::Bus;
    }
    EXPECT_EQ(buses, 1u) << graph.GetResource(r).name;
  };
  for (model::ResourceId ecu : topo.ecus) {
    on_one_bus(ecu, model::ResourceKind::Ecu);
  }
  for (model::ResourceId s : topo.sensors) {
    on_one_bus(s, model::ResourceKind::Sensor);
  }
  for (model::ResourceId a : topo.actuators) {
    on_one_bus(a, model::ResourceKind::Actuator);
  }
  if (topo.gateway != model::kInvalidId) {
    EXPECT_EQ(graph.GetResource(topo.gateway).kind,
              model::ResourceKind::Gateway);
    for (model::ResourceId ecu : topo.ecus) {
      const auto path = graph.ShortestPath(ecu, topo.gateway);
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(path->size(), 3u);  // ecu -> bus -> gateway
    }
  }
  for (const auto& [ecu, programs] : topo.augmentation.programs_by_ecu) {
    EXPECT_EQ(graph.GetResource(ecu).kind, model::ResourceKind::Ecu);
    for (std::size_t p = 0; p < programs.size(); ++p) {
      EXPECT_EQ(programs[p].profile_index, p);
    }
  }
  if (topo.augmentation.collect_task != model::kInvalidId) {
    ASSERT_NE(topo.gateway, model::kInvalidId);
  }
}

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
inline const char* kC17 = R"(
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

inline netlist::Netlist MakeC17() {
  return netlist::ParseBenchString(kC17);
}

/// A small sequential circuit: 2 inputs, 1 output, 2 flops forming a toggle
/// structure.
inline const char* kTinySeq = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(a, q1)
d1 = AND(b, q0)
y = OR(q0, q1)
)";

inline netlist::Netlist MakeSmallRandom(std::uint64_t seed = 7,
                                        std::uint32_t gates = 300) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 8;
  spec.num_flops = 24;
  spec.num_gates = gates;
  spec.num_hard_blocks = 2;
  spec.hard_block_width = 6;
  spec.seed = seed;
  return netlist::GenerateRandomCircuit(spec);
}

}  // namespace bistdse::testing
