#include <gtest/gtest.h>

#include "bist/pattern_source.hpp"
#include "netlist/netlist.hpp"
#include "sim/transition_fault.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(TransitionFault, HandComputedBufferChain) {
  // a -> BUF -> y with one flop for LOC sequencing: use a purely
  // combinational circuit and explicit pairs instead.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId y = nl.AddGate(GateType::Buf, {a}, "y");
  nl.MarkOutput(y);
  nl.Finalize();

  TransitionFaultSimulator tsim(nl);
  // Pair lane 0: a 0->1 (rising), lane 1: a 1->0 (falling), lane 2: a 0->0.
  const PatternWord v1[] = {0b010};
  const PatternWord v2[] = {0b001};
  tsim.SetPatternPairBlock(v1, v2);
  // Slow-to-rise at y: needs init 0, launch 1 -> lane 0 only.
  EXPECT_EQ(tsim.DetectWord({y, true}) & 0b111, 0b001u);
  // Slow-to-fall at y: init 1, launch 0 -> lane 1 only.
  EXPECT_EQ(tsim.DetectWord({y, false}) & 0b111, 0b010u);
}

TEST(TransitionFault, RequiresBothInitializationAndPropagation) {
  // y = AND(a, b): slow-to-rise at a needs a: 0->1 AND b=1 in v2.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  const NodeId y = nl.AddGate(GateType::And, {a, b});
  nl.MarkOutput(y);
  nl.Finalize();
  TransitionFaultSimulator tsim(nl);
  // lanes:        0: a 0->1, b=1 (detect)   1: a 0->1, b=0 (blocked)
  //               2: a 1->1, b=1 (no launch)
  const PatternWord v1[] = {0b100, 0b111};
  const PatternWord v2[] = {0b111, 0b101};
  tsim.SetPatternPairBlock(v1, v2);
  EXPECT_EQ(tsim.DetectWord({a, true}) & 0b111, 0b001u);
}

TEST(TransitionFault, LaunchOnCaptureUsesFunctionalNextState) {
  auto nl = netlist::ParseBenchString(bistdse::testing::kTinySeq);
  util::SplitMix64 rng(3);
  std::vector<PatternWord> v1(nl.CoreInputs().size());
  for (auto& w : v1) w = rng();
  const auto v2 = TransitionFaultSimulator::LaunchOnCapture(nl, v1);
  // PIs held.
  EXPECT_EQ(v2[0], v1[0]);
  EXPECT_EQ(v2[1], v1[1]);
  // Flop parts equal the captured D values.
  LogicSimulator sim(nl);
  sim.Simulate(v1);
  const auto d0 = nl.FaninsOf(nl.Flops()[0])[0];
  const auto d1 = nl.FaninsOf(nl.Flops()[1])[0];
  EXPECT_EQ(v2[2], sim.ValueOf(d0));
  EXPECT_EQ(v2[3], sim.ValueOf(d1));
}

TEST(TransitionFault, LocCoverageBelowStuckAtCoverage) {
  // The classic relation: with the same pseudo-random budget, LOC TDF
  // coverage trails stuck-at coverage (launch constraints cost patterns).
  auto nl = bistdse::testing::MakeSmallRandom(21, 300);
  const std::size_t width = nl.CoreInputs().size();

  bist::StumpsConfig config;
  bist::PatternSource source(config, width);
  std::vector<BitPattern> patterns;
  for (int i = 0; i < 512; ++i) patterns.push_back(source.Next());

  const double tdf = MeasureLocTransitionCoverage(nl, patterns);
  EXPECT_GT(tdf, 0.4);
  EXPECT_LT(tdf, 1.0);

  // Stuck-at coverage over the same patterns.
  FaultSimulator fsim(nl);
  auto remaining = CollapsedFaults(nl);
  const std::size_t total = remaining.size();
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const auto words = PackPatternBlock(patterns, base, 64, width);
    fsim.SetPatternBlock(words);
    std::vector<StuckAtFault> still;
    for (const auto& f : remaining) {
      if (!fsim.DetectWord(f)) still.push_back(f);
    }
    remaining = std::move(still);
  }
  const double saf = 1.0 - static_cast<double>(remaining.size()) / total;
  EXPECT_GT(saf, tdf);
}

TEST(TransitionFault, UniverseAndNames) {
  auto nl = bistdse::testing::MakeC17();
  const auto faults = TransitionFaults(nl);
  EXPECT_EQ(faults.size(), 2 * nl.NodeCount());
  EXPECT_EQ(ToString(nl, TransitionFault{nl.FindByName("22"), true}), "22/STR");
  EXPECT_EQ(ToString(nl, TransitionFault{nl.FindByName("22"), false}), "22/STF");
}

}  // namespace
}  // namespace bistdse::sim
