#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_circuit.hpp"
#include "test_helpers.hpp"

namespace bistdse::netlist {
namespace {

TEST(Netlist, BuildsAndLevelizesSimpleCircuit) {
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  const NodeId g1 = nl.AddGate(GateType::And, {a, b}, "g1");
  const NodeId g2 = nl.AddGate(GateType::Not, {g1}, "g2");
  nl.MarkOutput(g2);
  nl.Finalize();

  EXPECT_EQ(nl.NodeCount(), 4u);
  EXPECT_EQ(nl.PrimaryInputs().size(), 2u);
  EXPECT_EQ(nl.PrimaryOutputs().size(), 1u);
  EXPECT_EQ(nl.LevelOf(a), 0u);
  EXPECT_EQ(nl.LevelOf(g1), 1u);
  EXPECT_EQ(nl.LevelOf(g2), 2u);
  EXPECT_EQ(nl.MaxLevel(), 2u);
  EXPECT_EQ(nl.CombinationalGateCount(), 2u);
  EXPECT_EQ(nl.FindByName("g2"), g2);
  EXPECT_EQ(nl.FindByName("nope"), kInvalidNode);
}

TEST(Netlist, FanoutsAreDerived) {
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId g1 = nl.AddGate(GateType::Not, {a});
  const NodeId g2 = nl.AddGate(GateType::Buf, {a});
  nl.MarkOutput(g1);
  nl.MarkOutput(g2);
  nl.Finalize();
  EXPECT_EQ(nl.FanoutCount(a), 2u);
  EXPECT_EQ(nl.FanoutCount(g1), 0u);
}

TEST(Netlist, RejectsArityViolations) {
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  EXPECT_THROW(nl.AddGate(GateType::Not, {a, b}), std::invalid_argument);
  EXPECT_THROW(nl.AddGate(GateType::Xor, {a}), std::invalid_argument);
  EXPECT_THROW(nl.AddGate(GateType::And, {}), std::invalid_argument);
}

TEST(Netlist, RejectsOutOfRangeFanin) {
  Netlist nl;
  nl.AddInput("a");
  EXPECT_THROW(nl.AddGate(GateType::Buf, {NodeId{99}}), std::invalid_argument);
}

TEST(Netlist, RejectsUseAfterFinalize) {
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  nl.MarkOutput(a);
  nl.Finalize();
  EXPECT_THROW(nl.AddInput("b"), std::logic_error);
  EXPECT_THROW(nl.Finalize(), std::logic_error);
}

TEST(Netlist, FlopBreaksSequentialCycle) {
  // q feeds logic that feeds q's D input: legal (cycle through flop).
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId q = nl.AddFlop(a);  // placeholder fanin
  const NodeId x = nl.AddGate(GateType::Xor, {a, q});
  nl.RebindFlopInput(q, x);
  nl.MarkOutput(x);
  nl.Finalize();
  EXPECT_EQ(nl.CoreInputs().size(), 2u);   // a, q
  EXPECT_EQ(nl.CoreOutputs().size(), 2u);  // x (PO), x (PPO via q)
}

TEST(Netlist, CoreViewOrdersPisBeforePpis) {
  auto nl = ParseBenchString(testing::kTinySeq);
  ASSERT_EQ(nl.CoreInputs().size(), 4u);
  EXPECT_EQ(nl.TypeOf(nl.CoreInputs()[0]), GateType::Input);
  EXPECT_EQ(nl.TypeOf(nl.CoreInputs()[1]), GateType::Input);
  EXPECT_EQ(nl.TypeOf(nl.CoreInputs()[2]), GateType::Dff);
  EXPECT_EQ(nl.TypeOf(nl.CoreInputs()[3]), GateType::Dff);
  // Core outputs: 1 PO + 2 PPOs.
  EXPECT_EQ(nl.CoreOutputs().size(), 3u);
}

TEST(BenchIo, ParsesC17) {
  auto nl = testing::MakeC17();
  EXPECT_EQ(nl.PrimaryInputs().size(), 5u);
  EXPECT_EQ(nl.PrimaryOutputs().size(), 2u);
  EXPECT_EQ(nl.CombinationalGateCount(), 6u);
  for (NodeId id : nl.TopologicalOrder()) {
    EXPECT_EQ(nl.TypeOf(id), GateType::Nand);
  }
}

TEST(BenchIo, RoundTripsC17) {
  auto nl = testing::MakeC17();
  const std::string text = WriteBenchString(nl);
  auto nl2 = ParseBenchString(text);
  EXPECT_EQ(nl2.NodeCount(), nl.NodeCount());
  EXPECT_EQ(nl2.PrimaryInputs().size(), nl.PrimaryInputs().size());
  EXPECT_EQ(nl2.PrimaryOutputs().size(), nl.PrimaryOutputs().size());
  EXPECT_EQ(nl2.MaxLevel(), nl.MaxLevel());
}

TEST(BenchIo, ParsesSequentialWithForwardFlopReference) {
  auto nl = ParseBenchString(testing::kTinySeq);
  EXPECT_EQ(nl.Flops().size(), 2u);
  const NodeId q0 = nl.FindByName("q0");
  const NodeId d0 = nl.FindByName("d0");
  ASSERT_NE(q0, kInvalidNode);
  ASSERT_NE(d0, kInvalidNode);
  EXPECT_EQ(nl.FaninsOf(q0)[0], d0);
}

TEST(BenchIo, ReportsSyntaxErrorsWithLine) {
  EXPECT_THROW(ParseBenchString("INPUT(a)\nb = FROB(a)\n"), std::runtime_error);
  EXPECT_THROW(ParseBenchString("OUTPUT(missing)\n"), std::runtime_error);
  EXPECT_THROW(ParseBenchString("INPUT(a)\nb = AND(a, undef)\n"),
               std::runtime_error);
  EXPECT_THROW(ParseBenchString("INPUT(a)\na = NOT(a)\n"), std::runtime_error);
}

TEST(BenchIo, RejectsCombinationalCycle) {
  EXPECT_THROW(
      ParseBenchString("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n"),
      std::runtime_error);
}

TEST(BenchIo, SurvivesGarbageWithoutCrashing) {
  // Fuzz-ish robustness: arbitrary garbage must throw, never crash.
  const char* cases[] = {
      "((((",
      "= NAND(1, 2)",
      "x = (",
      "INPUT()",
      "OUTPUT",
      "a = AND(b,,c)",
      "INPUT(a)\nx = AND(a)\nx = OR(a)\n",  // duplicate definition
      "\x01\x02\xff",
      "INPUT(a)\nOUTPUT(a)\nb = DFF(a, a)\n",  // DFF arity
  };
  for (const char* text : cases) {
    EXPECT_THROW(ParseBenchString(text), std::runtime_error) << text;
  }
}

TEST(RandomCircuit, IsDeterministic) {
  RandomCircuitSpec spec;
  spec.seed = 42;
  auto a = GenerateRandomCircuit(spec);
  auto b = GenerateRandomCircuit(spec);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  for (NodeId id = 0; id < a.NodeCount(); ++id) {
    EXPECT_EQ(a.TypeOf(id), b.TypeOf(id));
    ASSERT_EQ(a.FaninsOf(id).size(), b.FaninsOf(id).size());
    for (std::size_t i = 0; i < a.FaninsOf(id).size(); ++i) {
      EXPECT_EQ(a.FaninsOf(id)[i], b.FaninsOf(id)[i]);
    }
  }
}

TEST(RandomCircuit, DifferentSeedsDiffer) {
  RandomCircuitSpec spec;
  spec.seed = 1;
  auto a = GenerateRandomCircuit(spec);
  spec.seed = 2;
  auto b = GenerateRandomCircuit(spec);
  bool any_diff = a.NodeCount() != b.NodeCount();
  for (NodeId id = 0; !any_diff && id < a.NodeCount(); ++id) {
    any_diff = a.TypeOf(id) != b.TypeOf(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomCircuit, HonorsSpecCounts) {
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_outputs = 5;
  spec.num_flops = 20;
  spec.num_gates = 500;
  auto nl = GenerateRandomCircuit(spec);
  EXPECT_EQ(nl.PrimaryInputs().size(), 10u);
  EXPECT_EQ(nl.PrimaryOutputs().size(), 5u);
  EXPECT_EQ(nl.Flops().size(), 20u);
  // Hard blocks may add a few extra gates around the budget.
  EXPECT_NEAR(static_cast<double>(nl.CombinationalGateCount()), 500.0, 120.0);
}

TEST(RandomCircuit, RejectsDegenerateSpecs) {
  RandomCircuitSpec spec;
  spec.num_inputs = 0;
  EXPECT_THROW(GenerateRandomCircuit(spec), std::invalid_argument);
  spec.num_inputs = 4;
  spec.num_gates = 0;
  EXPECT_THROW(GenerateRandomCircuit(spec), std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::netlist
