#include <gtest/gtest.h>

#include <sstream>

#include "casestudy/casestudy.hpp"
#include "dse/bus_load.hpp"
#include "dse/decoder.hpp"
#include "dse/exploration.hpp"
#include "dse/partial_networking.hpp"
#include "dse/report.hpp"

namespace bistdse::dse {
namespace {

casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(4);
  return casestudy::BuildCaseStudy(profiles, 42);
}

/// Decodes with every ECU running `profile_index`, patterns local or remote.
model::Implementation Forced(const casestudy::CaseStudy& cs,
                             SatDecoder& decoder, std::uint32_t profile_index,
                             bool local) {
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[profile_index];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_local = mappings[m].resource == ecu;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  auto impl = decoder.Decode(g);
  EXPECT_TRUE(impl.has_value());
  return *impl;
}

TEST(PartialNetworking, LocalStorageSessionsAreMilliseconds) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/true);
  const auto report =
      AnalyzePartialNetworking(cs.spec, cs.augmentation, impl);
  ASSERT_FALSE(report.sessions.empty());
  for (const auto& s : report.sessions) {
    EXPECT_TRUE(s.patterns_local);
    EXPECT_EQ(s.transfer_ms, 0.0);
    EXPECT_LT(s.session_ms, 10.0);  // profile 4: l = 1.71 ms
  }
  EXPECT_TRUE(report.AllDeadlinesMet());  // unconstrained by default
}

TEST(PartialNetworking, RemoteStorageAddsTransfer) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/false);
  const auto report =
      AnalyzePartialNetworking(cs.spec, cs.augmentation, impl);
  ASSERT_FALSE(report.sessions.empty());
  for (const auto& s : report.sessions) {
    EXPECT_FALSE(s.patterns_local);
    EXPECT_GT(s.transfer_ms, 0.0);
    EXPECT_GT(s.session_ms, s.transfer_ms * 0.99);
  }
  // The max session equals the Eq. 5 shut-off objective.
  const auto obj = EvaluateImplementation(cs.spec, cs.augmentation, impl);
  EXPECT_DOUBLE_EQ(report.max_session_ms, obj.shutoff_time_ms);
}

TEST(PartialNetworking, DeadlinesFlagSlowEcus) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/false);
  // A 10 ms default deadline is met by no remote-storage session.
  const auto strict = AnalyzePartialNetworking(cs.spec, cs.augmentation, impl,
                                               {}, 10.0);
  EXPECT_EQ(strict.deadline_violations.size(), strict.sessions.size());
  // Exempt one ECU with a generous per-ECU deadline.
  std::map<model::ResourceId, double> deadlines;
  deadlines[strict.sessions.front().ecu] = 1e12;
  const auto mixed = AnalyzePartialNetworking(cs.spec, cs.augmentation, impl,
                                              deadlines, 10.0);
  EXPECT_EQ(mixed.deadline_violations.size(), mixed.sessions.size() - 1);
}

TEST(BusLoad, FunctionalTrafficIsSchedulable) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, false);
  BusLoadValidator validator(cs.spec);
  const auto report = validator.Validate(cs.augmentation, impl);
  ASSERT_FALSE(report.buses.empty());
  // The case study's 41 small messages are far below 500 kbit/s capacity.
  for (const auto& b : report.buses) {
    EXPECT_LT(b.utilization, 0.5);
    EXPECT_TRUE(b.schedulable);
    EXPECT_GT(b.message_count, 0u);
  }
  EXPECT_TRUE(report.all_schedulable);
}

TEST(BusLoad, MirroredTransfersAreNonIntrusive) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/false);
  BusLoadValidator validator(cs.spec);
  const auto report = validator.Validate(cs.augmentation, impl);
  // Every selected program stores remotely -> a transfer per ECU that sends
  // functional traffic.
  EXPECT_GT(report.mirrored_transfers_checked, 0u);
  EXPECT_EQ(report.mirrored_transfers_intrusive, 0u);
}

TEST(BusLoad, LocalStorageNeedsNoTransferChecks) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/true);
  BusLoadValidator validator(cs.spec);
  const auto report = validator.Validate(cs.augmentation, impl);
  EXPECT_EQ(report.mirrored_transfers_checked, 0u);
}

TEST(BusLoad, EndToEndLatencyCoversEveryRoutedMessage) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, false);
  BusLoadValidator validator(cs.spec);
  const auto report = validator.Validate(cs.augmentation, impl);
  // Most of the 41 functional messages traverse a bus; messages between
  // tasks co-located on one ECU stay off the wire and are skipped.
  EXPECT_GE(report.end_to_end.size(), 30u);
  EXPECT_LE(report.end_to_end.size(), 41u);
  for (const auto& e : report.end_to_end) {
    EXPECT_GE(e.hops, 1u);
    EXPECT_GT(e.worst_case_ms, 0.0);
  }
  // The lightly loaded case study meets every implicit deadline.
  EXPECT_TRUE(report.all_within_period);
  // Cross-bus messages (through the gateway) have >= 2 hops and carry the
  // store-and-forward delay.
  bool saw_cross_bus = false;
  for (const auto& e : report.end_to_end) {
    if (e.hops >= 2) {
      saw_cross_bus = true;
      EXPECT_GT(e.worst_case_ms, 1.0);  // includes the 1 ms gateway delay
    }
  }
  (void)saw_cross_bus;  // depends on the decoded binding; no hard assert
}

TEST(Objectives2, CanFdCutsTransferTimeByPayloadRatio) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 3, /*local=*/false);

  const auto classic = EvaluateImplementation(cs.spec, cs.augmentation, impl);
  EvaluationOptions fd;
  fd.use_can_fd = true;
  const auto with_fd =
      EvaluateImplementation(cs.spec, cs.augmentation, impl, fd);

  // The FD download fills every slot with 64 bytes instead of the message's
  // classic payload (1-8 bytes): shut-off shrinks by roughly the payload
  // ratio of the bottleneck ECU.
  EXPECT_LT(with_fd.shutoff_time_ms, classic.shutoff_time_ms / 4);
  EXPECT_GT(with_fd.shutoff_time_ms, 0.0);
  // Cost and quality are unaffected by the transfer technology.
  EXPECT_DOUBLE_EQ(with_fd.monetary_cost, classic.monetary_cost);
  EXPECT_DOUBLE_EQ(with_fd.test_quality_percent,
                   classic.test_quality_percent);
}

TEST(Exploration2, Spea2PathProducesValidFront) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.algorithm = MoeaAlgorithm::Spea2;
  cfg.evaluations = 400;
  cfg.population_size = 20;
  cfg.seed = 6;
  cfg.validate_each_decode = true;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  EXPECT_EQ(result.evaluations, 400u);
  ASSERT_GT(result.pareto.size(), 2u);
  // Corner seeding works on the SPEA2 path too: quality-0 anchor present.
  double min_q = 1e18;
  for (const auto& e : result.pareto) {
    min_q = std::min(min_q, e.objectives.test_quality_percent);
  }
  EXPECT_EQ(min_q, 0.0);
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(moea::Dominates(
            result.pareto[i].objectives.ToMinimizationVector(),
            result.pareto[j].objectives.ToMinimizationVector()));
      }
    }
  }
}

TEST(Report, CsvHasHeaderAndRows) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 150;
  cfg.population_size = 16;
  cfg.seed = 2;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  const std::string csv = FrontCsvString(result);
  std::istringstream ss(csv);
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("cost,test_quality_percent"), std::string::npos);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(ss, line)) ++rows;
  EXPECT_EQ(rows, result.pareto.size());
}

TEST(Report, DescribeImplementationNamesEcusAndRoutes) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, 0, /*local=*/false);
  ExplorationEntry entry{EvaluateImplementation(cs.spec, cs.augmentation, impl),
                         impl};
  const std::string text =
      DescribeImplementation(cs.spec, cs.augmentation, entry);
  EXPECT_NE(text.find("profile 1"), std::string::npos);
  EXPECT_NE(text.find("at gateway"), std::string::npos);
  EXPECT_NE(text.find("c^D route: gateway"), std::string::npos);
  EXPECT_NE(text.find("allocation:"), std::string::npos);
}

}  // namespace
}  // namespace bistdse::dse
