// End-to-end integration: the complete flow of the paper on a synthetic CUT.
//
//   synthetic circuit -> fault universe -> mixed-mode BIST profiles
//   (random fault sim + PODEM + reseeding) -> E/E case study augmented with
//   those profiles -> SAT-decoding exploration -> feasible Pareto front,
//   schedulable buses, non-intrusive transfers, diagnosable fail data.
#include <gtest/gtest.h>

#include "bist/diagnosis.hpp"
#include "bist/profile_generator.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/bus_load.hpp"
#include "dse/exploration.hpp"
#include "dse/partial_networking.hpp"

namespace bistdse {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small CUT so the whole pipeline stays in CI budget.
    netlist::RandomCircuitSpec spec;
    spec.num_inputs = 16;
    spec.num_outputs = 16;
    spec.num_flops = 120;
    spec.num_gates = 900;
    spec.num_hard_blocks = 4;
    spec.hard_block_width = 8;
    spec.seed = 5;
    cut_ = new netlist::Netlist(netlist::GenerateRandomCircuit(spec));

    bist::ProfileGeneratorConfig config;
    config.stumps = casestudy::PaperStumpsConfig();
    config.prp_counts = {256, 1024};
    config.coverage_targets_percent = {100.0, 95.0};
    config.fill_seeds = {3, 3};
    // Present byte sizes at the paper CUT's magnitude.
    config.byte_scale = 30.0;
    bist::ProfileGenerator generator(*cut_, config);
    profiles_ = new std::vector<bist::BistProfile>(generator.GenerateAll());
  }
  static void TearDownTestSuite() {
    delete cut_;
    delete profiles_;
    cut_ = nullptr;
    profiles_ = nullptr;
  }

  static netlist::Netlist* cut_;
  static std::vector<bist::BistProfile>* profiles_;
};

netlist::Netlist* EndToEnd::cut_ = nullptr;
std::vector<bist::BistProfile>* EndToEnd::profiles_ = nullptr;

TEST_F(EndToEnd, GeneratedProfilesAreWellFormed) {
  ASSERT_EQ(profiles_->size(), 4u);
  for (const auto& p : *profiles_) {
    EXPECT_GT(p.fault_coverage_percent, 80.0);
    EXPECT_GT(p.runtime_ms, 0.0);
    EXPECT_GT(p.data_bytes, 0u);
  }
  // More PRPs => longer runtime; max target => more data than 95 % target.
  EXPECT_LT((*profiles_)[0].runtime_ms, (*profiles_)[2].runtime_ms);
  EXPECT_GE((*profiles_)[0].data_bytes, (*profiles_)[1].data_bytes);
}

TEST_F(EndToEnd, ExplorationOnGeneratedProfiles) {
  auto cs = casestudy::BuildCaseStudy(*profiles_, 42);
  dse::ExplorationConfig config;
  config.evaluations = 800;
  config.population_size = 24;
  config.seed = 4;
  config.validate_each_decode = true;  // every decode checked against Eqs.
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();

  ASSERT_GT(result.pareto.size(), 2u);
  EXPECT_EQ(result.decoder_stats.validation_failures, 0u);

  // Every front implementation: feasible, schedulable, non-intrusive.
  dse::BusLoadValidator validator(cs.spec);
  for (const auto& entry : result.pareto) {
    const auto violations =
        model::ValidateImplementation(cs.spec, entry.implementation);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0]);
    const auto bus_report = validator.Validate(cs.augmentation,
                                               entry.implementation);
    EXPECT_TRUE(bus_report.all_schedulable);
    EXPECT_EQ(bus_report.mirrored_transfers_intrusive, 0u);
    // Eq. 5 consistency with the per-ECU analysis.
    const auto pn = dse::AnalyzePartialNetworking(cs.spec, cs.augmentation,
                                                  entry.implementation);
    EXPECT_DOUBLE_EQ(pn.max_session_ms, entry.objectives.shutoff_time_ms);
  }
}

TEST_F(EndToEnd, SessionFailDataIsDiagnosable) {
  // Close the loop on the CUT itself: a faulty chip running the profile's
  // BIST session produces fail data from which diagnosis recovers the
  // defect.
  bist::StumpsConfig config = casestudy::PaperStumpsConfig();
  config.signature_window = 16;
  bist::StumpsSession session(*cut_, config);
  const auto faults = sim::CollapsedFaults(*cut_);
  const auto& injected = faults[faults.size() / 7];

  const auto result = session.Run(512, {}, injected);
  if (result.fail_data.empty()) GTEST_SKIP() << "fault escapes 512 patterns";

  bist::SignatureDiagnosis diagnosis(*cut_, config, 512, {});
  const auto ranked = diagnosis.Diagnose(result.fail_data, faults, 5);
  bool hit = false;
  for (const auto& c : ranked) hit |= c.fault == injected;
  EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace bistdse
