#include <gtest/gtest.h>

#include "atpg/tpg.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"

namespace bistdse::atpg {
namespace {

using sim::BitPattern;
using sim::CollapsedFaults;
using sim::FaultSimulator;
using sim::PatternWord;
using sim::StuckAtFault;

// Counts how many of `faults` are detected by `patterns`.
std::size_t CountDetected(const netlist::Netlist& nl,
                          std::span<const BitPattern> patterns,
                          std::span<const StuckAtFault> faults) {
  FaultSimulator fsim(nl);
  const std::size_t width = nl.CoreInputs().size();
  std::vector<StuckAtFault> remaining(faults.begin(), faults.end());
  for (std::size_t base = 0; base < patterns.size() && !remaining.empty();
       base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const auto words = sim::PackPatternBlock(patterns, base, count, width);
    fsim.SetPatternBlock(words);
    const PatternWord mask = sim::BlockMask(count);
    std::vector<StuckAtFault> still;
    for (const auto& f : remaining) {
      if ((fsim.DetectWord(f) & mask) == 0) still.push_back(f);
    }
    remaining = std::move(still);
  }
  return faults.size() - remaining.size();
}

TEST(Tpg, CoversAllTestableC17Faults) {
  auto nl = testing::MakeC17();
  auto faults = CollapsedFaults(nl);
  auto result = GenerateDeterministicPatterns(nl, faults);
  EXPECT_EQ(result.untestable, 0u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(result.detected, faults.size());
  EXPECT_EQ(CountDetected(nl, result.patterns, faults), faults.size());
  // c17 is fully testable with very few patterns.
  EXPECT_LE(result.patterns.size(), 10u);
}

TEST(Tpg, CompactionPreservesCoverage) {
  auto nl = bistdse::testing::MakeSmallRandom(41, 250);
  auto faults = CollapsedFaults(nl);

  DeterministicTpgOptions raw;
  raw.reverse_compaction = false;
  auto uncompacted = GenerateDeterministicPatterns(nl, faults, raw);

  auto compacted =
      CompactPatterns(nl, uncompacted.patterns, faults);
  EXPECT_LE(compacted.size(), uncompacted.patterns.size());
  EXPECT_EQ(CountDetected(nl, compacted, faults),
            CountDetected(nl, uncompacted.patterns, faults));
}

TEST(Tpg, CompactionDefaultEnabled) {
  auto nl = bistdse::testing::MakeSmallRandom(43, 250);
  auto faults = CollapsedFaults(nl);

  DeterministicTpgOptions with;
  with.reverse_compaction = true;
  DeterministicTpgOptions without;
  without.reverse_compaction = false;
  const auto a = GenerateDeterministicPatterns(nl, faults, with);
  const auto b = GenerateDeterministicPatterns(nl, faults, without);
  EXPECT_LE(a.patterns.size(), b.patterns.size());
  EXPECT_EQ(CountDetected(nl, a.patterns, faults),
            CountDetected(nl, b.patterns, faults));
  EXPECT_EQ(a.cubes.size(), a.patterns.size());
}

TEST(Tpg, CubesAlignWithPatterns) {
  auto nl = testing::MakeC17();
  auto faults = CollapsedFaults(nl);
  auto result = GenerateDeterministicPatterns(nl, faults);
  ASSERT_EQ(result.cubes.size(), result.patterns.size());
  for (std::size_t p = 0; p < result.cubes.size(); ++p) {
    ASSERT_EQ(result.cubes[p].bits.size(), result.patterns[p].size());
    for (std::size_t i = 0; i < result.cubes[p].bits.size(); ++i) {
      if (result.cubes[p].bits[i] == Value3::X) continue;
      EXPECT_EQ(result.patterns[p][i],
                result.cubes[p].bits[i] == Value3::One ? 1 : 0)
          << "fill must honor care bits";
    }
  }
}

TEST(Tpg, DeterministicForFixedSeed) {
  auto nl = bistdse::testing::MakeSmallRandom(47, 200);
  auto faults = CollapsedFaults(nl);
  DeterministicTpgOptions opts;
  opts.seed = 5;
  auto a = GenerateDeterministicPatterns(nl, faults, opts);
  auto b = GenerateDeterministicPatterns(nl, faults, opts);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.total_care_bits, b.total_care_bits);
}

TEST(Tpg, StaticCompactionShrinksOrKeepsAndPreservesCoverage) {
  auto nl = bistdse::testing::MakeSmallRandom(53, 250);
  auto faults = CollapsedFaults(nl);

  DeterministicTpgOptions plain;
  plain.reverse_compaction = false;
  DeterministicTpgOptions compacted = plain;
  compacted.static_compaction = true;

  const auto a = GenerateDeterministicPatterns(nl, faults, plain);
  const auto b = GenerateDeterministicPatterns(nl, faults, compacted);
  EXPECT_LE(b.patterns.size(), a.patterns.size());
  EXPECT_GE(CountDetected(nl, b.patterns, faults),
            CountDetected(nl, a.patterns, faults));
}

TEST(Tpg, MergeCompatibleCubesHonorsConflicts) {
  TestCube a, b, c;
  a.bits = {Value3::One, Value3::X, Value3::X};
  b.bits = {Value3::X, Value3::Zero, Value3::X};     // compatible with a
  c.bits = {Value3::Zero, Value3::X, Value3::One};   // conflicts with a+b
  const std::vector<TestCube> cubes = {a, b, c};
  const auto merged = MergeCompatibleCubes(cubes);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].bits,
            (std::vector<Value3>{Value3::One, Value3::Zero, Value3::X}));
  EXPECT_EQ(merged[1].bits, c.bits);
}

TEST(Tpg, EmptyTargetsYieldNoPatterns) {
  auto nl = testing::MakeC17();
  auto result = GenerateDeterministicPatterns(nl, {});
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.detected, 0u);
}

}  // namespace
}  // namespace bistdse::atpg
