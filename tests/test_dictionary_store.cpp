// DictionaryStore batch serving and campaign memoization:
//  - DiagnoseBatch is bit-identical to serial per-query Diagnose for every
//    thread count (the determinism contract of the serving layer; the TSan
//    leg runs this suite to certify the fan-out is race-free),
//  - CampaignMemo first-detect reuse is exact, including prefix hits.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bist/campaign_sources.hpp"
#include "bist/dictionary_store.hpp"
#include "bist/profile_generator.hpp"
#include "sim/campaign_memo.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

StumpsConfig StoreConfig() {
  StumpsConfig config;
  config.signature_window = 16;
  config.prpg_seed = 0x51;
  return config;
}

class DictionaryStoreTest : public ::testing::Test {
 protected:
  DictionaryStoreTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 220)),
        faults_(sim::CollapsedFaults(netlist_)),
        dictionary_(netlist_, StoreConfig(), kPatterns, {}, faults_) {
    // Queries: fail data of sampled injected faults, alternating between
    // two shard keys.
    StumpsSession session(netlist_, StoreConfig());
    for (std::size_t fi = 0; fi < faults_.size(); fi += 67) {
      auto result = session.Run(kPatterns, {}, faults_[fi]);
      if (result.fail_data.empty()) continue;
      queries_.push_back({ShardKey(queries_.size() % 2),
                          std::move(result.fail_data)});
    }
  }

  static DictShardKey ShardKey(std::size_t i) {
    return {"ecu-" + std::to_string(i), "p1"};
  }

  static constexpr std::uint64_t kPatterns = 256;
  netlist::Netlist netlist_;
  std::vector<sim::StuckAtFault> faults_;
  FaultDictionary dictionary_;
  std::vector<DictQuery> queries_;
};

TEST_F(DictionaryStoreTest, BatchIsBitIdenticalForEveryThreadCount) {
  const std::string path = ::testing::TempDir() + "store_shard.fdict";
  dictionary_.Save(path);

  // Shard 0 owned, shard 1 mmap-backed: both paths serve under the fan-out.
  DictionaryStore store;
  store.Add(ShardKey(0), FaultDictionary::Load(path));
  store.AddFromFile(ShardKey(1), path, /*mapped=*/true);
  ASSERT_EQ(store.ShardCount(), 2u);
  ASSERT_GE(queries_.size(), 4u);

  // Serial reference: per-query Diagnose in order.
  std::vector<std::vector<DiagnosisCandidate>> reference;
  for (const DictQuery& q : queries_) {
    reference.push_back(store.Find(q.shard)->Diagnose(q.fail_data, 5));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{0}}) {
    const auto batch = store.DiagnoseBatch(queries_, 5, threads);
    ASSERT_EQ(batch.size(), reference.size()) << "threads " << threads;
    for (std::size_t q = 0; q < batch.size(); ++q) {
      ASSERT_EQ(batch[q].size(), reference[q].size())
          << "threads " << threads << " query " << q;
      for (std::size_t i = 0; i < batch[q].size(); ++i) {
        EXPECT_EQ(batch[q][i].fault, reference[q][i].fault)
            << "threads " << threads << " query " << q << " rank " << i;
        EXPECT_EQ(batch[q][i].score, reference[q][i].score)
            << "threads " << threads << " query " << q << " rank " << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(DictionaryStoreTest, UnknownShardYieldsEmptyRanking) {
  DictionaryStore store;
  store.Add(ShardKey(0), std::move(dictionary_));
  EXPECT_EQ(store.Find(ShardKey(7)), nullptr);

  std::vector<DictQuery> queries = {{ShardKey(7), queries_.front().fail_data},
                                    {ShardKey(0), queries_.front().fail_data}};
  const auto results = store.DiagnoseBatch(queries, 5, 1);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_FALSE(results[1].empty());
}

// --- campaign memoization -------------------------------------------------

class CampaignMemoTest : public ::testing::Test {
 protected:
  CampaignMemoTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 220)),
        faults_(sim::CollapsedFaults(netlist_)),
        runner_(netlist_, {.block_width = 4, .threads = 1}) {}

  std::vector<std::uint64_t> RunOnce(std::uint64_t max_patterns,
                                     sim::CampaignMemo* memo,
                                     sim::CampaignStats* stats_out = nullptr) {
    PrpgSource source(StoreConfig(), netlist_.CoreInputs().size());
    std::vector<std::uint64_t> first_detect(faults_.size(), 0);
    const auto stats = sim::RunFirstDetectMemoized(
        runner_, source,
        PrpgStreamKey(StoreConfig(), netlist_.CoreInputs().size()), faults_,
        first_detect, max_patterns, /*warmup=*/false, memo);
    if (stats_out != nullptr) *stats_out = stats;
    return first_detect;
  }

  netlist::Netlist netlist_;
  std::vector<sim::StuckAtFault> faults_;
  sim::CampaignRunner runner_;
};

TEST_F(CampaignMemoTest, RepeatedCampaignHitsAndMatches) {
  sim::CampaignMemo memo;
  const auto reference = RunOnce(512, nullptr);

  sim::CampaignStats first_stats, second_stats;
  const auto first = RunOnce(512, &memo, &first_stats);
  const auto second = RunOnce(512, &memo, &second_stats);
  EXPECT_EQ(memo.Hits(), 1u);
  EXPECT_EQ(memo.Misses(), 1u);
  EXPECT_GT(memo.HitRate(), 0.0);
  EXPECT_GT(first_stats.patterns, 0u);
  EXPECT_EQ(second_stats.patterns, 0u);  // nothing simulated on the hit
  EXPECT_EQ(first_stats.dropped, second_stats.dropped);
  EXPECT_EQ(first_stats.survivors, second_stats.survivors);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
}

TEST_F(CampaignMemoTest, ShorterPrefixIsServedFromLongerCampaign) {
  sim::CampaignMemo memo;
  RunOnce(512, &memo);  // miss: fills the memo up to 512 patterns

  const auto reference = RunOnce(128, nullptr);
  sim::CampaignStats stats;
  const auto cached = RunOnce(128, &memo, &stats);
  EXPECT_EQ(memo.Hits(), 1u);
  EXPECT_EQ(stats.patterns, 0u);
  EXPECT_EQ(cached, reference);
}

TEST_F(CampaignMemoTest, LongerCampaignMissesThenReplaces) {
  sim::CampaignMemo memo;
  RunOnce(128, &memo);
  const auto longer = RunOnce(512, &memo);  // 128 < 512: must re-run
  EXPECT_EQ(memo.Hits(), 0u);
  EXPECT_EQ(memo.Misses(), 2u);
  EXPECT_EQ(longer, RunOnce(512, nullptr));
  // The longer result replaced the shorter entry: both lengths now hit.
  RunOnce(512, &memo);
  RunOnce(128, &memo);
  EXPECT_EQ(memo.Hits(), 2u);
}

// --- bounded memo: LRU eviction keeps the footprint capped ---------------

sim::FirstDetectKey SyntheticKey(std::uint64_t i) {
  return {0x1000 + i, 0x2000 + i, 0x3000 + i};
}

sim::FirstDetectResult SyntheticResult(std::uint64_t covered) {
  sim::FirstDetectResult result;
  result.first_detect = {covered / 2};
  result.covered_patterns = covered;
  return result;
}

TEST(CampaignMemoBoundedTest, CapacityOverflowEvictsLeastRecentlyUsed) {
  sim::CampaignMemo memo(2);
  EXPECT_EQ(memo.Capacity(), 2u);
  memo.Store(SyntheticKey(1), SyntheticResult(100));
  memo.Store(SyntheticKey(2), SyntheticResult(100));
  EXPECT_EQ(memo.Size(), 2u);
  EXPECT_EQ(memo.Evictions(), 0u);

  memo.Store(SyntheticKey(3), SyntheticResult(100));
  EXPECT_EQ(memo.Size(), 2u);  // Bounded: the third entry displaced one.
  EXPECT_EQ(memo.Evictions(), 1u);
  EXPECT_EQ(memo.Lookup(SyntheticKey(1), 50), nullptr);  // LRU victim.
  EXPECT_NE(memo.Lookup(SyntheticKey(2), 50), nullptr);
  EXPECT_NE(memo.Lookup(SyntheticKey(3), 50), nullptr);
  EXPECT_EQ(memo.Hits(), 2u);
  EXPECT_EQ(memo.Misses(), 1u);
}

TEST(CampaignMemoBoundedTest, CoveringHitRefreshesRecency) {
  sim::CampaignMemo memo(2);
  memo.Store(SyntheticKey(1), SyntheticResult(100));
  memo.Store(SyntheticKey(2), SyntheticResult(100));
  // Touch key 1: key 2 becomes the LRU entry and is the next victim.
  EXPECT_NE(memo.Lookup(SyntheticKey(1), 100), nullptr);
  memo.Store(SyntheticKey(3), SyntheticResult(100));
  EXPECT_NE(memo.Lookup(SyntheticKey(1), 100), nullptr);
  EXPECT_EQ(memo.Lookup(SyntheticKey(2), 100), nullptr);
}

TEST(CampaignMemoBoundedTest, LongerCoverageReplacesUnderBound) {
  sim::CampaignMemo memo(2);
  memo.Store(SyntheticKey(1), SyntheticResult(100));
  // A racing shorter campaign must not clobber the longer cached one...
  memo.Store(SyntheticKey(1), SyntheticResult(50));
  EXPECT_NE(memo.Lookup(SyntheticKey(1), 100), nullptr);
  // ...while a longer one replaces it, still within the same single slot.
  memo.Store(SyntheticKey(1), SyntheticResult(200));
  EXPECT_EQ(memo.Size(), 1u);
  const auto entry = memo.Lookup(SyntheticKey(1), 200);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->covered_patterns, 200u);
  EXPECT_EQ(memo.Evictions(), 0u);
}

TEST(CampaignMemoBoundedTest, ZeroCapacityMeansUnbounded) {
  sim::CampaignMemo memo;  // Default: the single-session shape, no eviction.
  for (std::uint64_t i = 0; i < 64; ++i) {
    memo.Store(SyntheticKey(i), SyntheticResult(100));
  }
  EXPECT_EQ(memo.Size(), 64u);
  EXPECT_EQ(memo.Evictions(), 0u);
  // An evicted-free memo still answers everything it ever stored.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(memo.Lookup(SyntheticKey(i), 100), nullptr) << i;
  }
}

TEST_F(CampaignMemoTest, BoundedMemoStillServesCampaigns) {
  // The RunFirstDetectMemoized path over a capacity-1 memo: same exactness
  // contract as the unbounded memo for the entry that stays resident.
  sim::CampaignMemo memo(1);
  const auto reference = RunOnce(512, nullptr);
  const auto first = RunOnce(512, &memo);
  sim::CampaignStats stats;
  const auto second = RunOnce(512, &memo, &stats);
  EXPECT_EQ(memo.Hits(), 1u);
  EXPECT_EQ(stats.patterns, 0u);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
  EXPECT_EQ(memo.Size(), 1u);
}

TEST_F(CampaignMemoTest, ProfileGeneratorsShareTheRandomPhase) {
  sim::CampaignMemo memo;
  ProfileGeneratorConfig config;
  config.stumps = StoreConfig();
  config.prp_counts = {256};
  config.coverage_targets_percent = {10.0};  // met by the random phase alone
  config.fill_seeds = {11};
  config.threads = 1;
  config.memo = &memo;

  ProfileGenerator first(netlist_, config);
  const auto profiles_first = first.GenerateAll();
  EXPECT_EQ(memo.Hits(), 0u);
  ASSERT_EQ(memo.Misses(), 1u);

  // A second generator over the same (netlist, stream, faults) reuses the
  // cached random phase — the repeated-prefix fleet campaign scenario.
  ProfileGenerator second(netlist_, config);
  const auto profiles_second = second.GenerateAll();
  EXPECT_EQ(memo.Hits(), 1u);
  ASSERT_EQ(profiles_first.size(), profiles_second.size());
  for (std::size_t i = 0; i < profiles_first.size(); ++i) {
    EXPECT_EQ(profiles_first[i].fault_coverage_percent,
              profiles_second[i].fault_coverage_percent);
    EXPECT_EQ(profiles_first[i].num_deterministic_patterns,
              profiles_second[i].num_deterministic_patterns);
  }
}

}  // namespace
}  // namespace bistdse::bist
