#include <gtest/gtest.h>

#include "bist/fault_dictionary.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

StumpsConfig DictConfig() {
  StumpsConfig config;
  config.signature_window = 16;
  config.prpg_seed = 0x51;
  return config;
}

class FaultDictionaryTest : public ::testing::Test {
 protected:
  FaultDictionaryTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 220)),
        faults_(sim::CollapsedFaults(netlist_)),
        dictionary_(netlist_, DictConfig(), kPatterns, {}, faults_) {}

  static constexpr std::uint64_t kPatterns = 256;
  netlist::Netlist netlist_;
  std::vector<sim::StuckAtFault> faults_;
  FaultDictionary dictionary_;
};

TEST_F(FaultDictionaryTest, AgreesWithSessionFailData) {
  // For sampled injected faults, the dictionary's stored failing windows
  // must equal the windows the session engine actually reports as failing.
  StumpsSession session(netlist_, DictConfig());
  for (std::size_t fi = 0; fi < faults_.size(); fi += 211) {
    const auto result = session.Run(kPatterns, {}, faults_[fi]);
    const auto stored = dictionary_.WindowsOf(fi);
    std::vector<std::uint64_t> observed(stored.size(), 0);
    for (const auto& fd : result.fail_data) {
      observed[fd.window_index / 64] |= std::uint64_t{1} << (fd.window_index % 64);
    }
    for (std::size_t wword = 0; wword < stored.size(); ++wword) {
      EXPECT_EQ(stored[wword], observed[wword]) << "fault " << fi;
    }
  }
}

TEST_F(FaultDictionaryTest, DiagnosesInjectedFaults) {
  StumpsSession session(netlist_, DictConfig());
  std::size_t attempted = 0, hits = 0;
  for (std::size_t fi = 0; fi < faults_.size(); fi += 101) {
    const auto result = session.Run(kPatterns, {}, faults_[fi]);
    if (result.fail_data.empty()) continue;
    ++attempted;
    const auto ranked = dictionary_.Diagnose(result.fail_data, 5);
    for (const auto& c : ranked) hits += c.fault == faults_[fi] ? 1 : 0;
  }
  ASSERT_GT(attempted, 3u);
  EXPECT_GE(hits * 10, attempted * 8) << hits << "/" << attempted;
}

TEST_F(FaultDictionaryTest, WindowCountMatchesSession) {
  EXPECT_EQ(dictionary_.WindowCount(), kPatterns / 16);
  EXPECT_EQ(dictionary_.FaultCount(), faults_.size());
}

TEST(FaultDictionaryConfig, RejectsPlainMisr) {
  auto nl = bistdse::testing::MakeSmallRandom(73, 100);
  StumpsConfig config = DictConfig();
  config.reset_misr_per_window = false;
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(10);
  EXPECT_THROW(FaultDictionary(nl, config, 64, {}, faults),
               std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::bist
