#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bist/fault_dictionary.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

/// Per-fault payload equality: every row's window bitmask and sparse
/// signature list, plus the session identity — the full observable state.
void ExpectBitIdentical(const FaultDictionary& a, const FaultDictionary& b) {
  ASSERT_EQ(a.FaultCount(), b.FaultCount());
  ASSERT_EQ(a.WindowCount(), b.WindowCount());
  ASSERT_EQ(a.TotalPatterns(), b.TotalPatterns());
  ASSERT_EQ(a.NetlistHash(), b.NetlistHash());
  ASSERT_EQ(a.ConfigHash(), b.ConfigHash());
  for (std::size_t f = 0; f < a.FaultCount(); ++f) {
    ASSERT_EQ(a.Faults()[f], b.Faults()[f]) << "fault " << f;
    const auto wa = a.WindowsOf(f), wb = b.WindowsOf(f);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t w = 0; w < wa.size(); ++w) {
      ASSERT_EQ(wa[w], wb[w]) << "fault " << f << " word " << w;
    }
    const auto sa = a.SignaturesOf(f), sb = b.SignaturesOf(f);
    ASSERT_EQ(sa.size(), sb.size()) << "fault " << f;
    for (std::size_t s = 0; s < sa.size(); ++s) {
      ASSERT_EQ(sa[s], sb[s]) << "fault " << f << " sig " << s;
    }
  }
}

StumpsConfig DictConfig() {
  StumpsConfig config;
  config.signature_window = 16;
  config.prpg_seed = 0x51;
  return config;
}

class FaultDictionaryTest : public ::testing::Test {
 protected:
  FaultDictionaryTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 220)),
        faults_(sim::CollapsedFaults(netlist_)),
        dictionary_(netlist_, DictConfig(), kPatterns, {}, faults_) {}

  static constexpr std::uint64_t kPatterns = 256;
  netlist::Netlist netlist_;
  std::vector<sim::StuckAtFault> faults_;
  FaultDictionary dictionary_;
};

TEST_F(FaultDictionaryTest, AgreesWithSessionFailData) {
  // For sampled injected faults, the dictionary's stored failing windows
  // must equal the windows the session engine actually reports as failing.
  StumpsSession session(netlist_, DictConfig());
  for (std::size_t fi = 0; fi < faults_.size(); fi += 211) {
    const auto result = session.Run(kPatterns, {}, faults_[fi]);
    const auto stored = dictionary_.WindowsOf(fi);
    std::vector<std::uint64_t> observed(stored.size(), 0);
    for (const auto& fd : result.fail_data) {
      observed[fd.window_index / 64] |= std::uint64_t{1} << (fd.window_index % 64);
    }
    for (std::size_t wword = 0; wword < stored.size(); ++wword) {
      EXPECT_EQ(stored[wword], observed[wword]) << "fault " << fi;
    }
  }
}

TEST_F(FaultDictionaryTest, DiagnosesInjectedFaults) {
  StumpsSession session(netlist_, DictConfig());
  std::size_t attempted = 0, hits = 0;
  for (std::size_t fi = 0; fi < faults_.size(); fi += 101) {
    const auto result = session.Run(kPatterns, {}, faults_[fi]);
    if (result.fail_data.empty()) continue;
    ++attempted;
    const auto ranked = dictionary_.Diagnose(result.fail_data, 5);
    for (const auto& c : ranked) hits += c.fault == faults_[fi] ? 1 : 0;
  }
  ASSERT_GT(attempted, 3u);
  EXPECT_GE(hits * 10, attempted * 8) << hits << "/" << attempted;
}

TEST_F(FaultDictionaryTest, WindowCountMatchesSession) {
  EXPECT_EQ(dictionary_.WindowCount(), kPatterns / 16);
  EXPECT_EQ(dictionary_.FaultCount(), faults_.size());
}

TEST_F(FaultDictionaryTest, DiagnoseEdgeCases) {
  StumpsSession session(netlist_, DictConfig());
  std::vector<FailDatum> fail_data;
  for (std::size_t fi = 0; fi < faults_.size() && fail_data.empty(); ++fi) {
    fail_data = session.Run(kPatterns, {}, faults_[fi]).fail_data;
  }
  ASSERT_FALSE(fail_data.empty());

  EXPECT_TRUE(dictionary_.Diagnose({}, 5).empty());
  EXPECT_TRUE(dictionary_.Diagnose(fail_data, 0).empty());
  // top_k past the candidate count returns every candidate, ranked.
  const auto all = dictionary_.Diagnose(fail_data, faults_.size() + 100);
  EXPECT_EQ(all.size(), faults_.size());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].score, all[i].score);
  }
}

TEST_F(FaultDictionaryTest, AccessorsRejectOutOfRangeFaultIndex) {
  EXPECT_THROW(dictionary_.WindowsOf(faults_.size()), std::out_of_range);
  EXPECT_THROW(dictionary_.SignaturesOf(faults_.size() + 7),
               std::out_of_range);
}

TEST_F(FaultDictionaryTest, SaveLoadRoundTripIsBitIdentical) {
  const std::string path = ::testing::TempDir() + "dict_roundtrip.fdict";
  dictionary_.Save(path);
  const auto loaded = FaultDictionary::Load(path);
  EXPECT_FALSE(loaded.IsMapped());
  ExpectBitIdentical(dictionary_, loaded);

  // Diagnose through the loaded copy must rank identically, score-exact.
  StumpsSession session(netlist_, DictConfig());
  for (std::size_t fi = 0; fi < faults_.size(); fi += 173) {
    const auto fail_data = session.Run(kPatterns, {}, faults_[fi]).fail_data;
    const auto a = dictionary_.Diagnose(fail_data, 7);
    const auto b = loaded.Diagnose(fail_data, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].fault, b[i].fault);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
  std::remove(path.c_str());
}

TEST_F(FaultDictionaryTest, MappedOpenIsBitIdentical) {
  const std::string path = ::testing::TempDir() + "dict_mapped.fdict";
  dictionary_.Save(path);
  const auto mapped = FaultDictionary::Map(path);
  EXPECT_TRUE(mapped.IsMapped());
  ExpectBitIdentical(dictionary_, mapped);

  StumpsSession session(netlist_, DictConfig());
  for (std::size_t fi = 0; fi < faults_.size(); fi += 173) {
    const auto fail_data = session.Run(kPatterns, {}, faults_[fi]).fail_data;
    const auto a = dictionary_.Diagnose(fail_data, 7);
    const auto b = mapped.Diagnose(fail_data, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].fault, b[i].fault);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
  std::remove(path.c_str());
}

TEST_F(FaultDictionaryTest, ExtendMatchesFullRebuildFromWindowBoundary) {
  // 192 = 12 complete windows: Extend only simulates the appended windows.
  FaultDictionary grown(netlist_, DictConfig(), 192, {}, faults_);
  grown.Extend(netlist_, DictConfig(), kPatterns, {});
  ExpectBitIdentical(dictionary_, grown);
}

TEST_F(FaultDictionaryTest, ExtendMatchesFullRebuildFromPartialWindow) {
  // 200 patterns end mid-window: the trailing partial window is re-simulated
  // from its first pattern, then the appended windows.
  FaultDictionary grown(netlist_, DictConfig(), 200, {}, faults_);
  ASSERT_EQ(grown.WindowCount(), 13u);
  grown.Extend(netlist_, DictConfig(), kPatterns, {});
  ExpectBitIdentical(dictionary_, grown);
}

TEST_F(FaultDictionaryTest, ExtendOfMappedDictionaryMaterializesFirst) {
  const std::string path = ::testing::TempDir() + "dict_extend.fdict";
  FaultDictionary small(netlist_, DictConfig(), 192, {}, faults_);
  small.Save(path);
  auto mapped = FaultDictionary::Map(path);
  ASSERT_TRUE(mapped.IsMapped());
  mapped.Extend(netlist_, DictConfig(), kPatterns, {});
  EXPECT_FALSE(mapped.IsMapped());
  ExpectBitIdentical(dictionary_, mapped);
  std::remove(path.c_str());
}

TEST_F(FaultDictionaryTest, ExtendRejectsNonPrefixSessions) {
  FaultDictionary d(netlist_, DictConfig(), 192, {}, faults_);
  // Shrinking.
  EXPECT_THROW(d.Extend(netlist_, DictConfig(), 64, {}),
               std::invalid_argument);
  // Different PRPG stream.
  StumpsConfig other = DictConfig();
  other.prpg_seed = 0x99;
  EXPECT_THROW(d.Extend(netlist_, other, kPatterns, {}),
               std::invalid_argument);
  // Different netlist.
  const auto other_nl = bistdse::testing::MakeSmallRandom(99, 220);
  EXPECT_THROW(d.Extend(other_nl, DictConfig(), kPatterns, {}),
               std::invalid_argument);
}

TEST(FaultDictionaryIo, CorruptedAndTruncatedFilesAreRejected) {
  const auto nl = bistdse::testing::MakeSmallRandom(73, 100);
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(16);
  FaultDictionary dict(nl, DictConfig(), 64, {}, faults);
  const std::string path = ::testing::TempDir() + "dict_corrupt.fdict";
  dict.Save(path);

  const auto file_bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  const auto write_file = [&](const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  };

  // Truncation: shorter than the header, and payload cut short.
  write_file(file_bytes.substr(0, 32));
  EXPECT_THROW(FaultDictionary::Load(path), std::runtime_error);
  write_file(file_bytes.substr(0, file_bytes.size() - 8));
  EXPECT_THROW(FaultDictionary::Load(path), std::runtime_error);

  // Wrong magic.
  {
    std::string bad = file_bytes;
    bad[0] = 'X';
    write_file(bad);
    EXPECT_THROW(FaultDictionary::Map(path), std::runtime_error);
  }
  // Header corruption is caught by the checksum.
  {
    std::string bad = file_bytes;
    bad[40] = static_cast<char>(bad[40] ^ 0x5a);
    write_file(bad);
    EXPECT_THROW(FaultDictionary::Load(path), std::runtime_error);
  }
  // The error message names the file and the defect.
  write_file(file_bytes.substr(0, 32));
  try {
    FaultDictionary::Load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
  // Intact file still opens after the tampering round-trips.
  write_file(file_bytes);
  EXPECT_NO_THROW(FaultDictionary::Load(path));
  std::remove(path.c_str());

  EXPECT_THROW(FaultDictionary::Load(path + ".missing"), std::runtime_error);
}

TEST(FaultDictionaryConfig, RejectsPlainMisr) {
  auto nl = bistdse::testing::MakeSmallRandom(73, 100);
  StumpsConfig config = DictConfig();
  config.reset_misr_per_window = false;
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(10);
  EXPECT_THROW(FaultDictionary(nl, config, 64, {}, faults),
               std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::bist
