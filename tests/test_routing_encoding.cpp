#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "dse/routing_encoding.hpp"
#include "util/rng.hpp"

namespace bistdse::dse {
namespace {

/// Small spec with BIST on two ECUs for routing tests.
struct RoutedFixture {
  model::Specification spec;
  model::BistAugmentation augmentation;
  model::ResourceId ecu1 = 0, ecu2 = 0, gateway = 0, bus1 = 0, bus2 = 0,
                    sensor = 0;
  model::TaskId t_sense = 0, t_ctrl = 0;

  explicit RoutedFixture(bool redundant_buses = false) {
    auto& arch = spec.Architecture();
    gateway = arch.AddResource(
        {"gw", model::ResourceKind::Gateway, 20.0, 1e-6, 0});
    bus1 = arch.AddResource({"can0", model::ResourceKind::Bus, 1.0, 0, 500e3});
    bus2 = arch.AddResource({"can1", model::ResourceKind::Bus, 1.0, 0, 500e3});
    ecu1 = arch.AddResource({"ecu1", model::ResourceKind::Ecu, 10.0, 2e-5, 0});
    ecu2 = arch.AddResource({"ecu2", model::ResourceKind::Ecu, 12.0, 2e-5, 0});
    sensor =
        arch.AddResource({"sensor", model::ResourceKind::Sensor, 2.0, 0, 0});
    arch.AddLink(bus1, gateway);
    arch.AddLink(bus2, gateway);
    arch.AddLink(ecu1, bus1);
    arch.AddLink(ecu2, bus2);
    arch.AddLink(sensor, bus1);
    if (redundant_buses) {
      // A second path between the segments: ECUs also share a direct bus.
      const auto bus3 = arch.AddResource(
          {"can2", model::ResourceKind::Bus, 1.0, 0, 500e3});
      arch.AddLink(ecu1, bus3);
      arch.AddLink(ecu2, bus3);
    }

    auto& app = spec.Application();
    model::Task sense;
    sense.name = "sense";
    t_sense = app.AddTask(sense);
    model::Task ctrl;
    ctrl.name = "ctrl";
    t_ctrl = app.AddTask(ctrl);
    model::Message m;
    m.name = "m";
    m.sender = t_sense;
    m.receivers = {t_ctrl};
    m.payload_bytes = 4;
    m.period_ms = 10;
    app.AddMessage(m);
    spec.AddMapping(t_sense, sensor);
    spec.AddMapping(t_ctrl, ecu1);
    spec.AddMapping(t_ctrl, ecu2);

    std::map<model::ResourceId, std::vector<bist::BistProfile>> profiles;
    bist::BistProfile p;
    p.profile_number = 1;
    p.num_random_patterns = 500;
    p.fault_coverage_percent = 99.0;
    p.runtime_ms = 4.0;
    p.data_bytes = 100000;
    profiles[ecu1] = {p};
    profiles[ecu2] = {p};
    augmentation = model::AugmentWithBist(spec, profiles);
    spec.Validate();
  }
};

TEST(RoutingEncoding, DecodesFeasibleImplementations) {
  RoutedFixture fx;
  RoutedSatDecoder decoder(fx.spec, fx.augmentation);
  util::SplitMix64 rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto genotype =
        moea::RandomGenotypeBiased(decoder.GenotypeSize(), rng.UnitReal(), rng);
    const auto impl = decoder.Decode(genotype);
    ASSERT_TRUE(impl.has_value()) << "trial " << trial;
    const auto violations = model::ValidateImplementation(fx.spec, *impl);
    ASSERT_TRUE(violations.empty()) << violations[0] << " trial " << trial;
  }
}

TEST(RoutingEncoding, CrossSegmentRouteGoesThroughGateway) {
  RoutedFixture fx;
  RoutedSatDecoder decoder(fx.spec, fx.augmentation);
  // Prefer ctrl on ecu2 (cross segment from the sensor on bus1).
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto ctrl_opts = fx.spec.MappingsOfTask(fx.t_ctrl);
  for (std::size_t m : ctrl_opts) {
    if (fx.spec.Mappings()[m].resource == fx.ecu2) {
      g.phases[m] = 1;
      g.priorities[m] = 0.99;
    }
  }
  const auto impl = decoder.Decode(g);
  ASSERT_TRUE(impl.has_value());
  ASSERT_EQ(impl->BoundResource(fx.spec, fx.t_ctrl), fx.ecu2);
  const auto& path = impl->routing.at(0);  // functional message id 0
  // sensor -> can0 -> gw -> can1 -> ecu2 must be a prefix of the walk.
  ASSERT_GE(path.size(), 5u);
  EXPECT_EQ(path[0], fx.sensor);
  EXPECT_EQ(path[1], fx.bus1);
  EXPECT_EQ(path[2], fx.gateway);
  EXPECT_EQ(path[3], fx.bus2);
  EXPECT_EQ(path[4], fx.ecu2);
}

TEST(RoutingEncoding, AgreesWithDerivedDecoderOnTreeTopology) {
  // On a tree architecture both decoders must produce the same binding and
  // equally feasible implementations for the same genotype.
  auto profiles = casestudy::PaperTableI();
  profiles.resize(2);
  auto cs = casestudy::BuildCaseStudy(profiles, 42);

  SatDecoder derived(cs.spec, cs.augmentation);
  RoutedSatDecoder routed(cs.spec, cs.augmentation, 5);
  ASSERT_EQ(derived.GenotypeSize(), routed.GenotypeSize());

  util::SplitMix64 rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto genotype =
        moea::RandomGenotypeBiased(derived.GenotypeSize(), 0.2, rng);
    const auto a = derived.Decode(genotype);
    const auto b = routed.Decode(genotype);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    // Same genotype, same decision order over the same mapping variables:
    // the binding must be identical.
    EXPECT_EQ(a->binding, b->binding) << "trial " << trial;
    EXPECT_TRUE(model::ValidateImplementation(cs.spec, *b).empty());
    // Identical objectives up to possible route tails (which affect only
    // allocation; compare quality and shut-off).
    const auto oa = EvaluateImplementation(cs.spec, cs.augmentation, *a);
    const auto ob = EvaluateImplementation(cs.spec, cs.augmentation, *b);
    EXPECT_DOUBLE_EQ(oa.test_quality_percent, ob.test_quality_percent);
    EXPECT_DOUBLE_EQ(oa.shutoff_time_ms, ob.shutoff_time_ms);
  }
}

/// FNV-1a fingerprint over decoded implementations (binding + full routing).
/// The recorded constants were produced by the pre-refactor solver; the
/// layered core must reproduce them bit-identically in its default config.
struct ImplFingerprint {
  std::uint64_t h = 1469598103934665603ULL;
  void U64(std::uint64_t v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    for (std::size_t i = 0; i < sizeof v; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void Add(const model::Implementation& impl) {
    U64(impl.binding.size());
    for (std::size_t m : impl.binding) U64(m);
    U64(impl.routing.size());
    for (const auto& [c, path] : impl.routing) {
      U64(c);
      U64(path.size());
      for (auto r : path) U64(r);
    }
  }
};

TEST(RoutingEncoding, DecodeFingerprintMatchesSeedSolverOnFixture) {
  RoutedFixture fx;
  RoutedSatDecoder decoder(fx.spec, fx.augmentation);
  util::SplitMix64 rng(1);
  ImplFingerprint f;
  for (int trial = 0; trial < 30; ++trial) {
    const auto genotype =
        moea::RandomGenotypeBiased(decoder.GenotypeSize(), rng.UnitReal(), rng);
    const auto impl = decoder.Decode(genotype);
    ASSERT_TRUE(impl.has_value()) << "trial " << trial;
    f.Add(*impl);
  }
  EXPECT_EQ(f.h, 0x56454691c678fe0fULL);
  // Decode telemetry flows through the routed decoder as well.
  EXPECT_EQ(decoder.Stats().decodes, 30u);
  EXPECT_GT(decoder.Stats().decode_seconds, 0.0);
  EXPECT_GT(decoder.Stats().solver.propagations, 0u);
}

TEST(RoutingEncoding, DecodeFingerprintMatchesSeedSolverOnCaseStudy) {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(2);
  auto cs = casestudy::BuildCaseStudy(profiles, 42);
  RoutedSatDecoder routed(cs.spec, cs.augmentation, 5);
  util::SplitMix64 rng(3);
  ImplFingerprint f;
  for (int trial = 0; trial < 5; ++trial) {
    const auto genotype =
        moea::RandomGenotypeBiased(routed.GenotypeSize(), 0.2, rng);
    const auto impl = routed.Decode(genotype);
    ASSERT_TRUE(impl.has_value()) << "trial " << trial;
    f.Add(*impl);
  }
  EXPECT_EQ(f.h, 0x82d60ba76425e5cfULL);
  EXPECT_GE(routed.Stats().solver.inprocess_runs, 1u);
}

TEST(RoutingEncoding, SupportsRedundantArchitectures) {
  // With a redundant direct bus between the ECUs, the derived shortest-path
  // router always picks one route; the full encoding may pick either — both
  // must validate.
  RoutedFixture fx(/*redundant_buses=*/true);
  RoutedSatDecoder decoder(fx.spec, fx.augmentation);
  util::SplitMix64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto genotype =
        moea::RandomGenotypeBiased(decoder.GenotypeSize(), rng.UnitReal(), rng);
    const auto impl = decoder.Decode(genotype);
    ASSERT_TRUE(impl.has_value());
    const auto violations = model::ValidateImplementation(fx.spec, *impl);
    ASSERT_TRUE(violations.empty()) << violations[0];
  }
}

TEST(RoutingEncoding, HopBoundPrunesVariablesAndRoutes) {
  RoutedFixture fx;
  RoutedEncodedProblem tight(fx.spec, fx.augmentation, 2);
  RoutedEncodedProblem wide(fx.spec, fx.augmentation, 5);
  // Fewer hops -> fewer candidate resources and time steps.
  EXPECT_LT(tight.VariableCount(), wide.VariableCount());
  EXPECT_GT(tight.VariableCount(), fx.spec.Mappings().size());

  // With 2 hops the cross-segment binding (sensor..ecu2 needs 4 hops) is
  // encoded as forbidden; the decoder must fall back to ecu1 even when the
  // genotype prefers ecu2.
  RoutedSatDecoder decoder(fx.spec, fx.augmentation, 2);
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  for (std::size_t m : fx.spec.MappingsOfTask(fx.t_ctrl)) {
    if (fx.spec.Mappings()[m].resource == fx.ecu2) {
      g.phases[m] = 1;
      g.priorities[m] = 0.99;
    }
  }
  const auto impl = decoder.Decode(g);
  ASSERT_TRUE(impl.has_value());
  EXPECT_EQ(impl->BoundResource(fx.spec, fx.t_ctrl), fx.ecu1);
}

}  // namespace
}  // namespace bistdse::dse
