// Acceptance tests of the frame-accurate session executor: simulated
// transfer times must land on the analytical Eq.-1 predictions, observed
// responses must respect the analytical WCRTs, and sessions must survive
// injected frame loss via transport retries — with every retransmission
// recorded in the event trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "casestudy/casestudy.hpp"
#include "dse/bus_load.hpp"
#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "dse/session_plan.hpp"
#include "model/implementation.hpp"
#include "net/session_executor.hpp"

namespace bistdse::net {
namespace {

// Case study with Table-I profiles 1-4, pattern data scaled down so a
// 15-ECU sweep of full downloads stays test-suite-fast. The scale only
// shortens the simulated transfer; the executor-vs-Eq.-1 comparison is
// scale-free.
casestudy::CaseStudy ScaledCaseStudy() {
  return casestudy::BuildCaseStudy(casestudy::ScaledTableI(1.0 / 256, 4), 42);
}

/// Forces a deterministic implementation: every ECU selects profile 4 and
/// stores its patterns locally or remotely (on the gateway) as requested.
model::Implementation Forced(const casestudy::CaseStudy& cs,
                             dse::SatDecoder& decoder, bool local) {
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[3];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_local = mappings[m].resource == ecu;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  return *decoder.Decode(g);
}

// Acceptance: for every case-study ECU's selected BIST profile, the
// simulated mirrored download matches the analytical q(b^T) within 5 % at
// zero loss, never undershoots it, and every observed response time stays
// below the analytical WCRT.
TEST(SessionExecutor, ZeroLossDownloadMatchesEq1WithinFivePercent) {
  auto cs = ScaledCaseStudy();
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/false);

  SessionExecutor executor(cs.spec, cs.augmentation);
  const auto report = executor.Execute(impl);
  ASSERT_EQ(report.sessions.size(), cs.augmentation.programs_by_ecu.size());
  EXPECT_TRUE(report.all_completed);
  EXPECT_TRUE(report.all_wcrt_dominated);
  EXPECT_EQ(report.total_retransmissions, 0u);
  EXPECT_EQ(report.total_frames_dropped, 0u);

  for (const auto& s : report.sessions) {
    ASSERT_TRUE(s.executed) << s.failure;
    ASSERT_TRUE(s.completed) << s.failure;
    EXPECT_FALSE(s.plan.patterns_local);
    ASSERT_GT(s.analytical_download_ms, 0.0);
    // Never below the sustained Eq.-1 rate...
    EXPECT_GE(s.simulated_download_ms, s.analytical_download_ms - 1e-9);
    // ...and within 5 % above it (slot discretization + flow control).
    EXPECT_LE(s.simulated_download_ms, 1.05 * s.analytical_download_ms)
        << FormatSessionExecution(cs.spec, s);
    EXPECT_GT(s.download.frames_sent, 0u);
    EXPECT_TRUE(s.wcrt_dominated) << FormatSessionExecution(cs.spec, s);
    ASSERT_FALSE(s.wcrt.empty());
    // Both mirrored carriers and untouched functional slots were observed.
    bool saw_mirrored = false, saw_functional = false;
    for (const auto& w : s.wcrt) {
      (w.mirrored ? saw_mirrored : saw_functional) = true;
      if (std::isfinite(w.analytical_ms)) {
        EXPECT_LE(w.observed_ms, w.analytical_ms + 1e-9)
            << w.bus_name << " id " << w.id;
      }
    }
    EXPECT_TRUE(saw_mirrored);
    EXPECT_TRUE(saw_functional);
  }
  EXPECT_LE(report.max_download_rel_error, 0.05);

  // The verdict travels into the analytical bus-load report.
  dse::BusLoadValidator validator(cs.spec);
  auto bus_report = validator.Validate(cs.augmentation, impl);
  EXPECT_FALSE(bus_report.operational.ran);
  AttachOperationalValidation(report, bus_report);
  EXPECT_TRUE(bus_report.operational.ran);
  EXPECT_TRUE(bus_report.operational.all_sessions_completed);
  EXPECT_TRUE(bus_report.operational.wcrt_dominated);
  EXPECT_LE(bus_report.operational.max_download_rel_error, 0.05);
}

// Acceptance: with 1 % injected frame loss every session still completes via
// transport retries, and the event trace records each retransmission.
TEST(SessionExecutor, OnePercentFrameLossCompletesViaTracedRetries) {
  auto cs = ScaledCaseStudy();
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/false);

  SessionExecutorOptions options;
  options.faults.drop_rate = 0.01;
  options.faults.seed = 7;
  SessionExecutor executor(cs.spec, cs.augmentation, options);
  EventTrace trace;
  const auto report = executor.Execute(impl, &trace);

  EXPECT_TRUE(report.all_completed);
  EXPECT_GT(report.total_retransmissions, 0u);
  EXPECT_GT(report.total_frames_dropped, 0u);
  for (const auto& s : report.sessions) {
    EXPECT_TRUE(s.completed) << s.failure;
    // Loss delays the transfer, it never accelerates it.
    EXPECT_GE(s.simulated_download_ms, s.analytical_download_ms - 1e-9);
  }

  // One trace event per retransmission, each tied to a transport transfer.
  EXPECT_EQ(trace.CountKind(TraceEventKind::Retransmission),
            report.total_retransmissions);
  for (const auto& e : trace.Events()) {
    if (e.kind == TraceEventKind::Retransmission) {
      EXPECT_NE(e.transfer, 0u);
      EXPECT_NE(e.note.find("retry"), std::string::npos);
    }
  }
  // Dropped transport frames are traced even without frame-level tracing.
  EXPECT_GE(trace.CountKind(TraceEventKind::FrameDropped), 1u);
  // Phase boundaries and transfer lifecycles are present.
  EXPECT_EQ(trace.CountKind(TraceEventKind::PhaseStart),
            trace.CountKind(TraceEventKind::PhaseEnd));
  EXPECT_EQ(trace.CountKind(TraceEventKind::TransferCompleted),
            2 * report.sessions.size());  // download + upload per session

  // JSONL export: one line per event, kinds spelled out.
  std::ostringstream jsonl;
  trace.WriteJsonl(jsonl);
  const std::string text = jsonl.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            trace.Events().size());
  EXPECT_NE(text.find("\"kind\":\"retransmission\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"frame_dropped\""), std::string::npos);
}

// Determinism: identical options reproduce the execution bit-for-bit.
TEST(SessionExecutor, LossyExecutionIsDeterministic) {
  auto cs = ScaledCaseStudy();
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/false);

  SessionExecutorOptions options;
  options.faults.drop_rate = 0.01;
  SessionExecutor executor(cs.spec, cs.augmentation, options);
  const auto a = executor.Execute(impl);
  const auto b = executor.Execute(impl);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.total_retransmissions, b.total_retransmissions);
  EXPECT_EQ(a.total_frames_dropped, b.total_frames_dropped);
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sessions[i].simulated_total_ms,
                     b.sessions[i].simulated_total_ms);
    EXPECT_DOUBLE_EQ(a.sessions[i].simulated_download_ms,
                     b.sessions[i].simulated_download_ms);
  }
}

// Local pattern storage: no download phase, but the fail-data upload still
// rides the mirrored slots and the session completes.
TEST(SessionExecutor, LocalStorageSkipsDownload) {
  auto cs = ScaledCaseStudy();
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = Forced(cs, decoder, /*local=*/true);

  SessionExecutor executor(cs.spec, cs.augmentation);
  const auto report = executor.Execute(impl);
  EXPECT_TRUE(report.all_completed);
  EXPECT_DOUBLE_EQ(report.max_download_rel_error, 0.0);
  for (const auto& s : report.sessions) {
    EXPECT_TRUE(s.plan.patterns_local);
    EXPECT_EQ(s.download.frames_sent, 0u);
    EXPECT_GT(s.upload.frames_sent, 0u);
    // The upload starts mid-stream of the carrier schedule (after the BIST
    // phase), so it can land up to one slot period on either side of q.
    EXPECT_GE(s.simulated_upload_ms, 0.95 * s.analytical_upload_ms);
    EXPECT_LE(s.simulated_upload_ms, 1.05 * s.analytical_upload_ms);
  }
}

// -- single-ECU network with the full-size Table-I profile 4 ----------------

struct SingleEcuSystem {
  model::Specification spec;
  model::BistAugmentation augmentation;
  model::Implementation impl;
  model::ResourceId ecu, gateway, bus;

  /// `tx_payload` = 0 builds an ECU that only receives — the
  /// no-mirrored-bandwidth case.
  explicit SingleEcuSystem(std::uint32_t tx_payload, double tx_period_ms = 1.0,
                           std::uint64_t pattern_bytes = 455061) {
    using namespace model;
    auto& arch = spec.Architecture();
    ecu = arch.AddResource({"ecu", ResourceKind::Ecu, 10.0, 0.001, 0});
    gateway = arch.AddResource({"gw", ResourceKind::Gateway, 20.0, 0.0005, 0});
    bus = arch.AddResource({"can0", ResourceKind::Bus, 3.0, 0, 500e3});
    arch.AddLink(ecu, bus);
    arch.AddLink(gateway, bus);

    auto& app = spec.Application();
    const TaskId t_ecu =
        app.AddTask({.name = "ecu_app", .kind = TaskKind::Functional});
    const TaskId t_gw =
        app.AddTask({.name = "gw_app", .kind = TaskKind::Functional});
    Message m;
    m.period_ms = tx_period_ms;
    if (tx_payload > 0) {
      m.name = "ecu_tx";
      m.sender = t_ecu;
      m.receivers = {t_gw};
      m.payload_bytes = tx_payload;
    } else {
      m.name = "gw_tx";  // ECU is a pure receiver: nothing to mirror
      m.sender = t_gw;
      m.receivers = {t_ecu};
      m.payload_bytes = 8;
    }
    app.AddMessage(m);
    spec.AddMapping(t_ecu, ecu);
    spec.AddMapping(t_gw, gateway);

    bist::BistProfile profile;  // Table I, profile 4
    profile.profile_number = 4;
    profile.num_random_patterns = 500;
    profile.fault_coverage_percent = 95.73;
    profile.runtime_ms = 1.71;
    profile.data_bytes = pattern_bytes;
    augmentation = AugmentWithBist(spec, {{ecu, {profile}}});

    // Bind everything; pattern memory goes to the gateway (remote storage).
    const auto& prog = augmentation.programs_by_ecu.at(ecu)[0];
    for (std::size_t i = 0; i < spec.Mappings().size(); ++i) {
      const auto& opt = spec.Mappings()[i];
      if (opt.task == prog.data_task && opt.resource != gateway) continue;
      impl.binding.push_back(i);
    }
    if (!CompleteRoutingAndAllocation(spec, impl)) {
      throw std::logic_error("single-ECU system must route");
    }
  }
};

TEST(SessionExecutor, FullSizeProfileMatchesEq1) {
  SingleEcuSystem sys(/*tx_payload=*/8);
  SessionExecutor executor(sys.spec, sys.augmentation);
  const auto report = executor.Execute(sys.impl);
  ASSERT_EQ(report.sessions.size(), 1u);
  const auto& s = report.sessions.front();
  ASSERT_TRUE(s.completed) << s.failure;

  // 455061 B over a mirrored 8 B / 1 ms slot: q = 56882.625 ms (Eq. 1).
  EXPECT_NEAR(s.analytical_download_ms, 455061.0 / 8.0, 1e-6);
  EXPECT_GE(s.simulated_download_ms, s.analytical_download_ms - 1e-9);
  EXPECT_LE(s.simulated_download_ms, 1.05 * s.analytical_download_ms);
  EXPECT_TRUE(s.wcrt_dominated);
  // The whole session: download + 1.71 ms BIST + upload + restore.
  EXPECT_GT(s.simulated_total_ms,
            s.simulated_download_ms + 1.71 + s.simulated_upload_ms);
}

// Satellite: an ECU without functional TX messages has no mirrored
// bandwidth. The +inf of Eq. 1 must surface as an explicit rejection in the
// plan, the objectives, and the executor — not as NaN phases or a UB cast.
TEST(SessionExecutor, NoMirroredBandwidthIsExplicitlyRejected) {
  SingleEcuSystem sys(/*tx_payload=*/0);

  const auto plans =
      dse::PlanSessions(sys.spec, sys.augmentation, sys.impl);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans.front().feasible);
  EXPECT_TRUE(std::isinf(plans.front().total_ms));
  EXPECT_EQ(plans.front().download_frames, 0u);
  const std::string text = dse::FormatSessionPlan(sys.spec, plans.front());
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);

  const auto objectives =
      dse::EvaluateImplementation(sys.spec, sys.augmentation, sys.impl);
  EXPECT_EQ(objectives.sessions_without_bandwidth, 1u);
  EXPECT_TRUE(std::isinf(objectives.shutoff_time_ms));

  SessionExecutor executor(sys.spec, sys.augmentation);
  const auto report = executor.Execute(sys.impl);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_FALSE(report.sessions.front().executed);
  EXPECT_FALSE(report.all_completed);
  EXPECT_NE(report.sessions.front().failure.find("no mirrored bandwidth"),
            std::string::npos);
}

}  // namespace
}  // namespace bistdse::net
