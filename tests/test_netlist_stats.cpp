#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "test_helpers.hpp"

namespace bistdse::netlist {
namespace {

TEST(NetlistStats, C17Counts) {
  const auto nl = testing::MakeC17();
  const auto stats = ComputeStats(nl);
  EXPECT_EQ(stats.primary_inputs, 5u);
  EXPECT_EQ(stats.primary_outputs, 2u);
  EXPECT_EQ(stats.flops, 0u);
  EXPECT_EQ(stats.combinational_gates, 6u);
  EXPECT_EQ(stats.max_level, 3u);
  EXPECT_EQ(stats.by_type[static_cast<std::size_t>(GateType::Nand)], 6u);
  EXPECT_EQ(stats.dangling_nodes, 0u);
  // Every NAND has 2 fanins.
  EXPECT_DOUBLE_EQ(stats.avg_fanin, 2.0);
}

TEST(NetlistStats, SyntheticCircuitIsClean) {
  const auto nl = bistdse::testing::MakeSmallRandom(3, 300);
  const auto stats = ComputeStats(nl);
  // The generator's observability closure leaves no dangling logic.
  EXPECT_EQ(stats.dangling_nodes, 0u);
  EXPECT_GT(stats.ScanRatio(), 0.0);
  EXPECT_LT(stats.ScanRatio(), 0.5);
  EXPECT_GT(stats.max_fanout, 1u);
}

TEST(NetlistStats, FormatMentionsKeyNumbers) {
  const auto nl = testing::MakeC17();
  const std::string report = FormatStats(ComputeStats(nl));
  EXPECT_NE(report.find("PIs 5"), std::string::npos);
  EXPECT_NE(report.find("NAND=6"), std::string::npos);
}

}  // namespace
}  // namespace bistdse::netlist
