#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::atpg {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sim::CollapsedFaults;
using sim::FaultSimulator;
using sim::PatternWord;
using sim::StuckAtFault;

// Checks with the (independently tested) fault simulator that `cube`,
// arbitrarily filled with zeros, detects `fault`.
bool CubeDetects(const Netlist& nl, const TestCube& cube,
                 const StuckAtFault& fault) {
  FaultSimulator fsim(nl);
  std::vector<PatternWord> words(cube.bits.size());
  for (std::size_t i = 0; i < cube.bits.size(); ++i) {
    words[i] = cube.bits[i] == Value3::One ? ~PatternWord{0} : 0;
  }
  fsim.SetPatternBlock(words);
  return (fsim.DetectWord(fault) & 1) != 0;
}

TEST(Value3, KleeneTables) {
  EXPECT_EQ(And3(Value3::One, Value3::X), Value3::X);
  EXPECT_EQ(And3(Value3::Zero, Value3::X), Value3::Zero);
  EXPECT_EQ(Or3(Value3::One, Value3::X), Value3::One);
  EXPECT_EQ(Or3(Value3::Zero, Value3::X), Value3::X);
  EXPECT_EQ(Xor3(Value3::One, Value3::X), Value3::X);
  EXPECT_EQ(Not3(Value3::X), Value3::X);
  EXPECT_EQ(Not3(Value3::Zero), Value3::One);
}

TEST(Podem, GeneratesTestsForAllC17Faults) {
  auto nl = testing::MakeC17();
  Podem podem(nl);
  for (const auto& f : CollapsedFaults(nl)) {
    const auto result = podem.Generate(f);
    ASSERT_EQ(result.outcome, PodemOutcome::Detected)
        << sim::ToString(nl, f);
    EXPECT_TRUE(CubeDetects(nl, result.cube, f)) << sim::ToString(nl, f);
  }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = OR(a, NOT(a)): SA1 at y is undetectable.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId n = nl.AddGate(GateType::Not, {a});
  const NodeId y = nl.AddGate(GateType::Or, {a, n});
  nl.MarkOutput(y);
  nl.Finalize();
  Podem podem(nl);
  EXPECT_EQ(podem.Generate({y, -1, true}).outcome, PodemOutcome::Untestable);
  EXPECT_EQ(podem.Generate({y, -1, false}).outcome, PodemOutcome::Detected);
}

TEST(Podem, HandlesFlopBoundaries) {
  auto nl = netlist::ParseBenchString(bistdse::testing::kTinySeq);
  Podem podem(nl);
  // Fault on the AND gate output (feeds d1/PPO).
  const NodeId d1 = nl.FindByName("d1");
  auto result = podem.Generate({d1, -1, false});
  ASSERT_EQ(result.outcome, PodemOutcome::Detected);
  EXPECT_TRUE(CubeDetects(nl, result.cube, {d1, -1, false}));
}

TEST(Podem, FlopDBranchFault) {
  // Give the flop-D net fanout > 1 so the branch fault is collapsed-distinct.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  const NodeId g = nl.AddGate(GateType::And, {a, b});
  const NodeId q = nl.AddFlop(g);
  const NodeId y = nl.AddGate(GateType::Not, {g});
  nl.MarkOutput(y);
  nl.Finalize();
  (void)q;
  Podem podem(nl);
  const StuckAtFault f{q, 0, false};  // D branch stuck-at-0
  auto result = podem.Generate(f);
  ASSERT_EQ(result.outcome, PodemOutcome::Detected);
  EXPECT_TRUE(CubeDetects(nl, result.cube, f));
}

TEST(Podem, AgreesWithFaultSimOnRandomCircuits) {
  // Every PODEM "Detected" must be confirmed by fault simulation; every
  // "Untestable" must resist 256 random patterns (weak but meaningful check).
  for (std::uint64_t seed : {21, 22}) {
    auto nl = bistdse::testing::MakeSmallRandom(seed, 200);
    Podem podem(nl, 500);
    FaultSimulator fsim(nl);
    auto faults = CollapsedFaults(nl);

    std::size_t detected = 0, untestable = 0, aborted = 0;
    for (std::size_t fi = 0; fi < faults.size(); fi += 5) {
      const auto result = podem.Generate(faults[fi]);
      if (result.outcome == PodemOutcome::Detected) {
        ++detected;
        EXPECT_TRUE(CubeDetects(nl, result.cube, faults[fi]))
            << sim::ToString(nl, faults[fi]);
      } else if (result.outcome == PodemOutcome::Untestable) {
        ++untestable;
        util::SplitMix64 rng(seed);
        const std::size_t width = nl.CoreInputs().size();
        std::vector<PatternWord> words(width);
        for (int block = 0; block < 4; ++block) {
          for (auto& w : words) w = rng();
          fsim.SetPatternBlock(words);
          EXPECT_EQ(fsim.DetectWord(faults[fi]), 0u)
              << sim::ToString(nl, faults[fi])
              << " claimed untestable but detected randomly";
        }
      } else {
        ++aborted;
      }
    }
    // The vast majority of faults in a random circuit are testable and easy.
    EXPECT_GT(detected, untestable + aborted);
  }
}

TEST(Podem, BacktrackLimitProducesAbortNotHang) {
  auto nl = bistdse::testing::MakeSmallRandom(31, 400);
  Podem podem(nl, 1);  // absurdly small limit
  auto faults = CollapsedFaults(nl);
  int outcomes[3] = {0, 0, 0};
  for (std::size_t fi = 0; fi < faults.size(); fi += 9) {
    ++outcomes[static_cast<int>(podem.Generate(faults[fi]).outcome)];
  }
  // With limit 1 some faults must still succeed (easy ones need no
  // backtracking at all).
  EXPECT_GT(outcomes[0], 0);
}

}  // namespace
}  // namespace bistdse::atpg
