#include <gtest/gtest.h>

#include <cstdint>

#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/exploration.hpp"
#include "dse/objectives.hpp"
#include "dse/parallel.hpp"

namespace bistdse::dse {
namespace {

using casestudy::BuildCaseStudy;
using casestudy::PaperTableI;

/// A case study with a reduced profile set keeps unit tests fast.
casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = PaperTableI();
  profiles.resize(6);
  return BuildCaseStudy(profiles, 42);
}

TEST(Encoding, EveryRandomGenotypeDecodesFeasibly) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation, /*validate_each_decode=*/true);
  util::SplitMix64 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    const auto impl = decoder.Decode(genotype);
    ASSERT_TRUE(impl.has_value()) << "trial " << trial;
    // validate_each_decode would have thrown on any Eq. violation.
  }
  EXPECT_EQ(decoder.Stats().validation_failures, 0u);
  EXPECT_EQ(decoder.Stats().infeasible, 0u);
}

TEST(Encoding, AllPhasesFalseSelectsNoBist) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  moea::Genotype genotype;
  genotype.priorities.assign(decoder.GenotypeSize(), 0.5);
  genotype.phases.assign(decoder.GenotypeSize(), 0);
  const auto impl = decoder.Decode(genotype);
  ASSERT_TRUE(impl.has_value());
  const auto obj = EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  EXPECT_EQ(obj.ecus_with_bist, 0u);
  EXPECT_EQ(obj.test_quality_percent, 0.0);
  EXPECT_EQ(obj.shutoff_time_ms, 0.0);
}

TEST(Encoding, AllPhasesTrueSelectsBistBroadly) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation, true);
  moea::Genotype genotype;
  genotype.priorities.assign(decoder.GenotypeSize(), 0.5);
  genotype.phases.assign(decoder.GenotypeSize(), 1);
  const auto impl = decoder.Decode(genotype);
  ASSERT_TRUE(impl.has_value());
  const auto obj = EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  // Eq. 3a allows at most one BIST per ECU; allocated ECUs with a functional
  // task can host one — expect a good number of them selected.
  EXPECT_GT(obj.ecus_with_bist, 0u);
  EXPECT_LE(obj.ecus_with_bist, 15u);
  EXPECT_GT(obj.test_quality_percent, 0.0);
}

TEST(Objectives, GatewayStorageIsSharedAcrossEcus) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation, true);

  // Prefer: every b^T on, every b^D at the gateway (second mapping option).
  moea::Genotype genotype;
  genotype.priorities.assign(decoder.GenotypeSize(), 0.5);
  genotype.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    // Select only profile 0 everywhere; its data task to the gateway.
    const auto& prog = programs[0];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      genotype.phases[m] = 1;
      genotype.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      if (mappings[m].resource == cs.gateway) {
        genotype.phases[m] = 1;
        genotype.priorities[m] = 0.8;
      } else {
        genotype.priorities[m] = 0.1;
      }
    }
  }
  const auto impl = decoder.Decode(genotype);
  ASSERT_TRUE(impl.has_value());
  const auto obj = EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  ASSERT_GT(obj.ecus_with_bist, 1u);
  // All selected programs share profile 0: the gateway stores exactly one
  // copy of its encoded data.
  EXPECT_EQ(obj.gateway_memory_bytes, PaperTableI()[0].data_bytes);
  EXPECT_EQ(obj.distributed_memory_bytes, 0u);
  // Remote pattern storage implies a transfer time q > 0 on top of l(b).
  EXPECT_GT(obj.shutoff_time_ms, PaperTableI()[0].runtime_ms);
}

TEST(Objectives, LocalStorageAvoidsTransferTime) {
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation, true);
  const auto mappings = cs.spec.Mappings();

  moea::Genotype genotype;
  genotype.priorities.assign(decoder.GenotypeSize(), 0.5);
  genotype.phases.assign(decoder.GenotypeSize(), 0);
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[0];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      genotype.phases[m] = 1;
      genotype.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      if (mappings[m].resource == ecu) {  // local copy
        genotype.phases[m] = 1;
        genotype.priorities[m] = 0.8;
      } else {
        genotype.priorities[m] = 0.1;
      }
    }
  }
  const auto impl = decoder.Decode(genotype);
  ASSERT_TRUE(impl.has_value());
  const auto obj = EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  ASSERT_GT(obj.ecus_with_bist, 1u);
  EXPECT_EQ(obj.gateway_memory_bytes, 0u);
  EXPECT_GT(obj.distributed_memory_bytes, 0u);
  // No transfer: shut-off time equals the session runtime l(b).
  EXPECT_DOUBLE_EQ(obj.shutoff_time_ms, PaperTableI()[0].runtime_ms);
}

TEST(Objectives, LocalStorageCostsMoreThanShared) {
  // The cost model must reproduce the paper's central trade-off.
  auto cs = SmallCaseStudy();
  SatDecoder decoder(cs.spec, cs.augmentation);
  const auto mappings = cs.spec.Mappings();

  auto make = [&](bool local) {
    moea::Genotype g;
    g.priorities.assign(decoder.GenotypeSize(), 0.5);
    g.phases.assign(decoder.GenotypeSize(), 0);
    for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
      const auto& prog = programs[0];
      for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
        g.phases[m] = 1;
        g.priorities[m] = 0.9;
      }
      for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
        const bool is_local = mappings[m].resource == ecu;
        g.phases[m] = is_local == local ? 1 : 0;
        g.priorities[m] = is_local == local ? 0.8 : 0.1;
      }
    }
    const auto impl = decoder.Decode(g);
    EXPECT_TRUE(impl.has_value());
    return EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  };

  const auto local = make(true);
  const auto shared = make(false);
  EXPECT_GT(local.monetary_cost, shared.monetary_cost);
  EXPECT_LT(local.shutoff_time_ms, shared.shutoff_time_ms);
}

TEST(Exploration, SmallRunFindsTradeoffFront) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 600;
  cfg.population_size = 24;
  cfg.seed = 5;
  cfg.validate_each_decode = true;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();

  EXPECT_EQ(result.evaluations, 600u);
  ASSERT_GT(result.pareto.size(), 3u);
  EXPECT_EQ(result.decoder_stats.validation_failures, 0u);

  // The front must span the quality axis (0-quality cheap designs up to
  // high-coverage designs) and contain no dominated pair.
  double min_q = 1e9, max_q = -1e9;
  for (const auto& e : result.pareto) {
    min_q = std::min(min_q, e.objectives.test_quality_percent);
    max_q = std::max(max_q, e.objectives.test_quality_percent);
  }
  // 600 evaluations cannot fully converge, but the front must already span
  // a wide quality range (full-scale runs in bench_fig5 reach 0..~99 %).
  EXPECT_LT(min_q, 50.0);
  EXPECT_GT(max_q, 80.0);
  EXPECT_GT(max_q - min_q, 30.0);
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(moea::Dominates(
          result.pareto[i].objectives.ToMinimizationVector(),
          result.pareto[j].objectives.ToMinimizationVector()))
          << i << " dominates " << j;
    }
  }
}

TEST(Exploration, CornerSeedingSpansQualityAxis) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 24;
  cfg.seed = 5;
  cfg.seed_corners = true;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();

  double min_q = 1e18, max_q = -1e18, min_shutoff = 1e18;
  for (const auto& e : result.pareto) {
    min_q = std::min(min_q, e.objectives.test_quality_percent);
    max_q = std::max(max_q, e.objectives.test_quality_percent);
    min_shutoff = std::min(min_shutoff, e.objectives.shutoff_time_ms);
  }
  // The no-BIST corner puts quality 0 / shut-off 0 on the front immediately;
  // the best-coverage corner pins the top end.
  EXPECT_EQ(min_q, 0.0);
  EXPECT_EQ(min_shutoff, 0.0);
  EXPECT_GT(max_q, 90.0);
}

TEST(Encoding, ReusedSolverMatchesFreshSolver) {
  // The decoder keeps one solver across decodes (learned clauses persist).
  // Soundness check: every decode must equal a decode on a freshly built
  // instance with the same policy.
  auto cs = SmallCaseStudy();
  SatDecoder reused(cs.spec, cs.augmentation);
  util::SplitMix64 rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    const auto genotype = moea::RandomGenotypeBiased(
        reused.GenotypeSize(), rng.UnitReal(), rng);
    const auto a = reused.Decode(genotype);
    SatDecoder fresh(cs.spec, cs.augmentation);
    const auto b = fresh.Decode(genotype);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->binding, b->binding) << "trial " << trial;
  }
}

TEST(Exploration, StagnationStopsEarly) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 100000;  // far more than a stagnating run will use
  cfg.population_size = 16;
  cfg.seed = 7;
  cfg.stagnation_generations = 3;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  EXPECT_LT(result.evaluations, cfg.evaluations);
  EXPECT_GT(result.pareto.size(), 2u);
}

/// FNV-1a fingerprint of a Pareto front: objective vectors plus bindings.
/// The recorded constants below were produced by the pre-refactor monolithic
/// solver; the layered core (inprocessing on, pinned decision order) must
/// reproduce them bit-identically — see the canonicity notes in sat/.
std::uint64_t FrontFingerprint(const std::vector<ExplorationEntry>& pareto) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const auto u64 = [&bytes](std::uint64_t v) { bytes(&v, sizeof v); };
  u64(pareto.size());
  for (const auto& e : pareto) {
    const auto v = e.objectives.ToMinimizationVector();
    u64(v.size());
    for (double d : v) bytes(&d, sizeof d);
    u64(e.implementation.binding.size());
    for (std::size_t m : e.implementation.binding) u64(m);
  }
  return h;
}

TEST(Exploration, FrontFingerprintMatchesSeedSolverAt600Evals) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 600;
  cfg.population_size = 24;
  cfg.seed = 5;
  cfg.validate_each_decode = true;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  EXPECT_EQ(FrontFingerprint(result.pareto), 0xb4fad4f200a66d11ULL);
  // The decode telemetry must be plumbed through the exploration result.
  EXPECT_EQ(result.decoder_stats.decodes, 600u);
  EXPECT_GT(result.decoder_stats.decode_seconds, 0.0);
  EXPECT_GT(result.decoder_stats.solver.propagations, 0u);
}

TEST(Exploration, FrontFingerprintMatchesSeedSolverAt200Evals) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 200;
  cfg.population_size = 16;
  cfg.seed = 9;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  EXPECT_EQ(FrontFingerprint(explorer.Run().pareto), 0xe23eb57fbb12e1d8ULL);
}

TEST(Exploration, ParallelFrontFingerprintMatchesSeedSolver) {
  // Full case study, two islands over the shared engine: the merged front
  // (and the per-island Offer sequences behind it) must reproduce the
  // pre-refactor bytes exactly.
  auto cs = casestudy::BuildCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 1000;
  cfg.population_size = 100;
  cfg.seed = 1;
  const auto result = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  EXPECT_EQ(FrontFingerprint(result.pareto), 0xaabcf3abec95651aULL);
  EXPECT_EQ(result.decoder_stats.decodes, 2000u);
  EXPECT_GT(result.decoder_stats.decode_seconds, 0.0);
  EXPECT_GE(result.decoder_stats.solver.inprocess_runs, 1u);
}

TEST(Exploration, DeterministicForFixedSeed) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 200;
  cfg.population_size = 16;
  cfg.seed = 9;
  Explorer a(cs.spec, cs.augmentation, cfg);
  Explorer b(cs.spec, cs.augmentation, cfg);
  const auto ra = a.Run();
  const auto rb = b.Run();
  ASSERT_EQ(ra.pareto.size(), rb.pareto.size());
  for (std::size_t i = 0; i < ra.pareto.size(); ++i) {
    EXPECT_EQ(ra.pareto[i].objectives.ToMinimizationVector(),
              rb.pareto[i].objectives.ToMinimizationVector());
  }
}

}  // namespace
}  // namespace bistdse::dse
