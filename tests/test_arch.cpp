// The parameterized topology generator and the corpus sweep.
//
// The load-bearing assertions are the bit-identity pins: the canonical
// case-study specs, rebased onto arch::GenerateTopology, must reproduce the
// pre-refactor hand-built graphs exactly. The pinned constants were captured
// from the last commit with the hand-built builders; a change here means the
// generator no longer replays the historical construction order or RNG
// stream.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>

#include "arch/corpus.hpp"
#include "arch/topology.hpp"
#include "casestudy/casestudy.hpp"
#include "net/campaign.hpp"
#include "test_helpers.hpp"

namespace bistdse::arch {
namespace {

// --- bit-identity pins (pre-refactor fingerprints) -------------------------

TEST(BitIdentity, CaseStudyContentHash) {
  const auto cs = casestudy::BuildCaseStudy();
  EXPECT_EQ(model::ContentHash(cs.spec), 0xa5c6946838edaf57ULL);
}

TEST(BitIdentity, SmallCaseStudyContentHash) {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(6);
  const auto cs = casestudy::BuildCaseStudy(profiles, 42);
  EXPECT_EQ(model::ContentHash(cs.spec), 0x243847d15553f4edULL);
}

TEST(BitIdentity, FutureCaseStudyContentHash) {
  const auto cs = casestudy::BuildFutureCaseStudy();
  EXPECT_EQ(model::ContentHash(cs.spec), 0x12318214d05ad4d0ULL);
}

TEST(BitIdentity, FutureSmallContentHash) {
  auto small = casestudy::PaperTableI();
  small.resize(3);
  const auto cs = casestudy::BuildFutureCaseStudy(small, {}, 43);
  EXPECT_EQ(model::ContentHash(cs.spec), 0xfea83f08f24946eeULL);
}

TEST(BitIdentity, BaselineCostBits) {
  const double cost = casestudy::BaselineCost();
  std::uint64_t bits;
  std::memcpy(&bits, &cost, sizeof bits);
  EXPECT_EQ(bits, 0x406ce00000000000ULL);  // 231.0 exactly
}

// The canonical spec fed to the generator directly — not through the
// casestudy wrappers — still lands on the pinned graph.
TEST(BitIdentity, CanonicalSpecRoundTripsThroughGenerator) {
  const auto spec = casestudy::CaseStudySpec(casestudy::PaperTableI());
  const Topology topo = GenerateTopology(spec, 42);
  EXPECT_EQ(model::ContentHash(topo.spec), 0xa5c6946838edaf57ULL);
}

// --- determinism and seed sensitivity --------------------------------------

TopologySpec SmallGeneratedSpec() {
  TopologySpec spec;
  spec.name = "gen-small";
  spec.num_ecus = 8;
  spec.buses = {{}, {}};
  spec.num_sensors = 4;
  spec.num_actuators = 2;
  spec.profile_sets = {casestudy::ScaledTableI(1.0 / 256, 3)};
  return spec;
}

TEST(Generator, SameSpecAndSeedIsBitIdentical) {
  const auto spec = SmallGeneratedSpec();
  const auto a = GenerateTopology(spec, 7);
  const auto b = GenerateTopology(spec, 7);
  EXPECT_EQ(model::ContentHash(a.spec), model::ContentHash(b.spec));
}

TEST(Generator, DifferentSeedsAreStructurallyDistinct) {
  const auto spec = SmallGeneratedSpec();
  // Different seeds redraw mapping options, payloads, and derived chains.
  EXPECT_NE(model::ContentHash(GenerateTopology(spec, 7).spec),
            model::ContentHash(GenerateTopology(spec, 8).spec));
}

TEST(Generator, GeneratedTopologyIsStructurallyValid) {
  const auto topo = GenerateTopology(SmallGeneratedSpec(), 7);
  bistdse::testing::ExpectValidTopology(topo);
  EXPECT_EQ(topo.ecus.size(), 8u);
  EXPECT_EQ(topo.buses.size(), 2u);
  // Single CUT generation: no per-ECU types recorded.
  EXPECT_TRUE(topo.cut_type_by_ecu.empty());
}

TEST(Generator, MultiGenerationAssignsContiguousBlocks) {
  auto spec = SmallGeneratedSpec();
  spec.profile_sets.push_back(
      NextGenerationProfiles(spec.profile_sets[0]));
  const auto topo = GenerateTopology(spec, 7);
  ASSERT_EQ(topo.cut_type_by_ecu.size(), 8u);
  for (std::size_t e = 0; e < topo.ecus.size(); ++e) {
    EXPECT_EQ(topo.cut_type_by_ecu.at(topo.ecus[e]), e < 4 ? 0u : 1u);
  }
}

TEST(Generator, EmptyProfileSetsSkipAugmentation) {
  auto spec = SmallGeneratedSpec();
  spec.profile_sets.clear();
  const auto topo = GenerateTopology(spec, 7);
  EXPECT_EQ(topo.augmentation.collect_task, model::kInvalidId);
  EXPECT_TRUE(topo.augmentation.programs_by_ecu.empty());
}

// --- degenerate-spec rejection ---------------------------------------------

/// The thrown message must name the offending field.
void ExpectRejected(const TopologySpec& spec, const std::string& field) {
  try {
    ValidateTopologySpec(spec);
    FAIL() << "expected rejection naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << e.what();
  }
}

TEST(Validation, RejectsZeroEcus) {
  auto spec = SmallGeneratedSpec();
  spec.num_ecus = 0;
  ExpectRejected(spec, "num_ecus");
}

TEST(Validation, RejectsZeroBuses) {
  auto spec = SmallGeneratedSpec();
  spec.buses.clear();
  ExpectRejected(spec, "buses");
}

TEST(Validation, RejectsGatewaylessMultiBus) {
  auto spec = SmallGeneratedSpec();
  spec.has_gateway = false;
  ExpectRejected(spec, "has_gateway");
}

TEST(Validation, RejectsGatewaylessAugmentation) {
  auto spec = SmallGeneratedSpec();
  spec.buses = {{}};
  spec.has_gateway = false;  // single bus, but BIST needs the collector
  ExpectRejected(spec, "has_gateway");
}

TEST(Validation, RejectsSensorBusMismatchAndRange) {
  auto spec = SmallGeneratedSpec();
  spec.sensor_bus = {0};  // 4 sensors declared
  ExpectRejected(spec, "sensor_bus");
  spec.sensor_bus = {0, 5, 0, 0};
  ExpectRejected(spec, "sensor_bus");
}

TEST(Validation, RejectsChainReferencingMissingEcus) {
  auto spec = SmallGeneratedSpec();
  // Home bus 1 exists but a 1-ECU bus cannot host a processing chain.
  spec.num_ecus = 5;  // ceil(5/2) = 3 on bus 0, 2 on bus 1 — now shrink:
  spec.buses = {{}, {}, {}};  // ceil(5/3) = 2, 2, 1
  spec.chains = {{"orphan", 2, {0}, {0}, 4}};
  ExpectRejected(spec, "orphan");
}

TEST(Validation, RejectsChainWithMissingSensor) {
  auto spec = SmallGeneratedSpec();
  spec.chains = {{"bad", 0, {9}, {0}, 4}};
  ExpectRejected(spec, "bad");
}

TEST(Validation, RejectsChainWithOutOfRangeHomeBus) {
  auto spec = SmallGeneratedSpec();
  spec.chains = {{"lost", 7, {0}, {0}, 4}};
  ExpectRejected(spec, "lost");
}

TEST(Validation, RejectsDerivedChainBounds) {
  auto spec = SmallGeneratedSpec();
  spec.chain_processing_min = 5;
  spec.chain_processing_max = 4;
  ExpectRejected(spec, "chain_processing");
}

TEST(Validation, RejectsMoreGenerationsThanEcus) {
  auto spec = SmallGeneratedSpec();
  spec.num_ecus = 4;
  spec.buses = {{}};
  spec.profile_sets.assign(5, spec.profile_sets[0]);
  ExpectRejected(spec, "profile_sets");
}

// --- corpus sampling -------------------------------------------------------

CorpusSpec SmallCorpus() {
  CorpusSpec corpus;
  corpus.count = 6;
  corpus.min_ecus = 5;
  corpus.max_ecus = 50;
  corpus.min_buses = 2;
  corpus.max_buses = 8;
  corpus.seed = 11;
  corpus.profile_pool = casestudy::ScaledTableI(1.0 / 256, 3);
  return corpus;
}

TEST(Corpus, SamplesWithinEnvelopeAndDeterministically) {
  const auto corpus = SmallCorpus();
  std::set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < corpus.count; ++i) {
    const auto spec = SampleTopologySpec(corpus, i);
    EXPECT_GE(spec.buses.size(), corpus.min_buses);
    EXPECT_LE(spec.buses.size(), corpus.max_buses);
    EXPECT_GE(spec.num_ecus, std::max(corpus.min_ecus, 2 * spec.buses.size()));
    EXPECT_LE(spec.num_ecus, corpus.max_ecus);
    EXPECT_GE(spec.profile_sets.size(), 1u);
    EXPECT_LE(spec.profile_sets.size(), corpus.max_generations);

    const auto again = SampleTopologySpec(corpus, i);
    const auto topo = GenerateTopology(spec, TopologySeed(corpus, i));
    EXPECT_EQ(model::ContentHash(topo.spec),
              model::ContentHash(
                  GenerateTopology(again, TopologySeed(corpus, i)).spec));
    bistdse::testing::ExpectValidTopology(topo);
    hashes.insert(model::ContentHash(topo.spec));
  }
  // Every corpus member is structurally distinct.
  EXPECT_EQ(hashes.size(), corpus.count);
}

TEST(Corpus, RejectsDegenerateEnvelope) {
  auto corpus = SmallCorpus();
  corpus.profile_pool.clear();
  EXPECT_THROW(SampleTopologySpec(corpus, 0), std::invalid_argument);
  corpus = SmallCorpus();
  corpus.min_buses = 9;
  EXPECT_THROW(SampleTopologySpec(corpus, 0), std::invalid_argument);
  corpus = SmallCorpus();
  corpus.max_generations = 0;
  EXPECT_THROW(SampleTopologySpec(corpus, 0), std::invalid_argument);
}

// --- adversarial campaign --------------------------------------------------

TEST(Campaign, ScheduleIsSeededAndBaselineFirst) {
  net::CampaignScheduleSpec spec;
  spec.rounds = 5;
  spec.seed = 3;
  const auto a = net::MakeCampaignSchedule(spec);
  const auto b = net::MakeCampaignSchedule(spec);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].drop_rate, 0.0);
  EXPECT_EQ(a[0].corrupt_rate, 0.0);
  EXPECT_EQ(a[0].reorder_rate, 0.0);
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].drop_rate, b[r].drop_rate);
    EXPECT_EQ(a[r].seed, b[r].seed);
    EXPECT_LE(a[r].drop_rate, spec.max_drop_rate);
    EXPECT_LE(a[r].corrupt_rate, spec.max_corrupt_rate);
    EXPECT_LE(a[r].reorder_rate, spec.max_reorder_rate);
  }
  // Adversarial rounds actually inject something.
  double injected = 0.0;
  for (std::size_t r = 1; r < a.size(); ++r) {
    injected += a[r].drop_rate + a[r].corrupt_rate + a[r].reorder_rate;
  }
  EXPECT_GT(injected, 0.0);
}

TEST(Campaign, JudgeFlagsEachInvariant) {
  net::SessionExecutionReport report;
  net::SessionExecution s;
  s.executed = true;
  s.completed = true;
  s.analytical_download_ms = 100.0;
  s.simulated_download_ms = 101.0;
  s.analytical_upload_ms = 10.0;
  s.simulated_upload_ms = 10.0;
  report.sessions.push_back(s);
  EXPECT_TRUE(
      net::JudgeExecution(report, {}, /*zero_loss=*/true).Passed());

  // Invariant 1: a download beating Eq. 1.
  report.sessions[0].simulated_download_ms = 99.0;
  auto round = net::JudgeExecution(report, {}, true);
  EXPECT_FALSE(round.q_bounded);
  report.sessions[0].simulated_download_ms = 101.0;

  // Invariant 1, zero-loss band: outside 1.05 q (no FC blocks planned).
  report.sessions[0].simulated_download_ms = 106.0;
  EXPECT_FALSE(net::JudgeExecution(report, {}, true).q_bounded);
  // ...allowed under injected loss.
  EXPECT_TRUE(net::JudgeExecution(report, {}, false).q_bounded);
  // The band widens by the per-block FC slack: 32 frames = 2 blocks of 16
  // buy 2 x 2.5 ms on top of 1.05 q.
  report.sessions[0].plan.download_frames = 32;
  EXPECT_TRUE(net::JudgeExecution(report, {}, true).q_bounded);
  report.sessions[0].simulated_download_ms = 111.0;
  EXPECT_FALSE(net::JudgeExecution(report, {}, true).q_bounded);
  report.sessions[0].plan.download_frames = 0;
  report.sessions[0].simulated_download_ms = 101.0;

  // Invariant 2: WCRT exceeded.
  report.sessions[0].wcrt_dominated = false;
  EXPECT_FALSE(net::JudgeExecution(report, {}, true).wcrt_dominated);
  report.sessions[0].wcrt_dominated = true;

  // Invariant 3: a functional (non-mirrored) slot pushed past its bound.
  net::WcrtSample w;
  w.bus_name = "can0";
  w.mirrored = false;
  w.observed_ms = 2.0;
  w.analytical_ms = 1.0;
  report.sessions[0].wcrt.push_back(w);
  round = net::JudgeExecution(report, {}, true);
  EXPECT_FALSE(round.non_intrusive);
  // A mirrored sample over its own bound is not a non-intrusiveness hit.
  report.sessions[0].wcrt[0].mirrored = true;
  EXPECT_TRUE(net::JudgeExecution(report, {}, true).non_intrusive);
}

// --- end-to-end sweep ------------------------------------------------------

TEST(CorpusSweep, InvariantsHoldOnSmallFamilies) {
  CorpusSpec corpus = SmallCorpus();
  corpus.count = 2;
  corpus.max_ecus = 10;
  corpus.max_buses = 3;

  CorpusSweepOptions options;
  options.exploration.evaluations = 120;
  options.exploration.population_size = 12;
  options.exploration.seed = 11;
  options.campaign.rounds = 2;

  const auto report = SweepCorpus(corpus, options);
  ASSERT_EQ(report.topologies.size(), 2u);
  EXPECT_TRUE(report.all_passed) << FormatCorpusReport(report);
  // Baseline + 2 adversarial rounds per topology.
  EXPECT_EQ(report.rounds_executed, 6u);
  for (const auto& t : report.topologies) {
    EXPECT_GT(t.pareto_size, 0u);
    EXPECT_TRUE(t.campaign.all_q_bounded);
    EXPECT_TRUE(t.campaign.all_wcrt_dominated);
    EXPECT_TRUE(t.campaign.all_non_intrusive);
  }
}

// Front fingerprint on the future case study through the generator — the
// whole DSE behaves identically, not just the input graph (pinned pre-
// refactor with evals=400, pop=24, seed=8 on the 3-profile small set).
TEST(BitIdentity, FutureFrontFingerprint) {
  auto small = casestudy::PaperTableI();
  small.resize(3);
  auto cs = casestudy::BuildFutureCaseStudy(small, {}, 43);
  dse::ExplorationConfig cfg;
  cfg.evaluations = 400;
  cfg.population_size = 24;
  cfg.seed = 8;
  dse::Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();

  std::uint64_t h = 1469598103934665603ULL;
  const auto bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const auto u64 = [&bytes](std::uint64_t v) { bytes(&v, sizeof v); };
  u64(result.pareto.size());
  for (const auto& e : result.pareto) {
    const auto v = e.objectives.ToMinimizationVector();
    u64(v.size());
    for (double d : v) bytes(&d, sizeof d);
    u64(e.implementation.binding.size());
    for (std::size_t m : e.implementation.binding) u64(m);
  }
  EXPECT_EQ(result.pareto.size(), 55u);
  EXPECT_EQ(h, 0xdc39838a92b7e23eULL);
}

}  // namespace
}  // namespace bistdse::arch
