#include <gtest/gtest.h>

#include <bit>

#include "bist/stumps.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

using sim::CollapsedFaults;
using sim::StuckAtFault;

StumpsConfig SmallConfig() {
  StumpsConfig cfg;
  cfg.signature_window = 16;
  cfg.prpg_degree = 32;
  cfg.prpg_seed = 0xACE1;
  return cfg;
}

TEST(Stumps, GoldenRunPasses) {
  auto nl = bistdse::testing::MakeSmallRandom(51, 200);
  StumpsSession session(nl, SmallConfig());
  const auto result = session.Run(256, {}, std::nullopt);
  EXPECT_TRUE(result.pass);
  EXPECT_TRUE(result.fail_data.empty());
  EXPECT_EQ(result.total_patterns, 256u);
  EXPECT_EQ(result.window_signatures.size(), 256u / 16);
}

TEST(Stumps, SignaturesAreDeterministic) {
  auto nl = bistdse::testing::MakeSmallRandom(51, 200);
  StumpsSession a(nl, SmallConfig());
  StumpsSession b(nl, SmallConfig());
  EXPECT_EQ(a.Run(128, {}, std::nullopt).window_signatures,
            b.Run(128, {}, std::nullopt).window_signatures);
}

TEST(Stumps, InjectedFaultProducesFailData) {
  auto nl = bistdse::testing::MakeSmallRandom(53, 200);
  StumpsSession session(nl, SmallConfig());

  // Pick a fault that random patterns detect quickly (stem of a PO driver).
  const StuckAtFault fault{nl.PrimaryOutputs()[0], -1, true};
  const auto result = session.Run(512, {}, fault);
  // The PO driver stem is almost surely detected in 512 random patterns;
  // if it were constant-true this test would be vacuous.
  ASSERT_FALSE(result.pass);
  ASSERT_FALSE(result.fail_data.empty());
  for (const auto& fd : result.fail_data) {
    EXPECT_NE(fd.observed_signature, fd.expected_signature);
    EXPECT_LT(fd.window_index, result.window_signatures.size());
  }
}

TEST(Stumps, FailDataMatchesDetectionWindows) {
  // With per-window MISR reset, a window fails iff it contains a detecting
  // pattern (modulo MISR aliasing, ~2^-32): cross-check against the fault
  // simulator over the same PRPG stream.
  auto nl = bistdse::testing::MakeSmallRandom(55, 200);
  const auto cfg = SmallConfig();
  StumpsSession session(nl, cfg);
  const std::size_t width = nl.CoreInputs().size();

  const auto faults = CollapsedFaults(nl);
  const StuckAtFault fault = faults[faults.size() / 2];
  const std::uint64_t num_patterns = 256;
  const auto result = session.Run(num_patterns, {}, fault);

  // Recreate the stream and compute expected failing windows.
  sim::FaultSimulator fsim(nl);
  Lfsr prpg(Lfsr::DefaultPolynomial(cfg.prpg_degree), cfg.prpg_seed);
  std::vector<std::uint8_t> window_fails(num_patterns / cfg.signature_window +
                                             1,
                                         0);
  std::vector<sim::BitPattern> block;
  std::uint64_t base = 0;
  while (base < num_patterns) {
    block.clear();
    const std::size_t count =
        std::min<std::uint64_t>(64, num_patterns - base);
    for (std::size_t k = 0; k < count; ++k) block.push_back(prpg.Emit(width));
    fsim.SetPatternBlock(sim::PackPatternBlock(block, 0, count, width));
    auto det = fsim.DetectWord(fault) & sim::BlockMask(count);
    while (det) {
      const int k = std::countr_zero(det);
      det &= det - 1;
      window_fails[(base + k) / cfg.signature_window] = 1;
    }
    base += count;
  }

  std::vector<std::uint8_t> observed(window_fails.size(), 0);
  for (const auto& fd : result.fail_data) observed[fd.window_index] = 1;
  for (std::size_t w = 0; w * cfg.signature_window < num_patterns; ++w) {
    EXPECT_EQ(observed[w], window_fails[w]) << "window " << w;
  }
}

TEST(Stumps, DeterministicSeedsAreApplied) {
  auto nl = bistdse::testing::MakeSmallRandom(57, 150);
  const std::size_t width = nl.CoreInputs().size();
  ReseedingEncoder encoder(static_cast<std::uint32_t>(width));

  atpg::TestCube cube;
  cube.bits.assign(width, atpg::Value3::X);
  cube.bits[0] = atpg::Value3::One;
  const auto enc = encoder.Encode(cube);
  ASSERT_TRUE(enc.has_value());

  StumpsSession session(nl, SmallConfig());
  std::vector<EncodedPattern> det = {*enc};
  const auto with_det = session.Run(64, det, std::nullopt);
  EXPECT_EQ(with_det.total_patterns, 65u);

  StumpsSession session2(nl, SmallConfig());
  const auto without = session2.Run(64, {}, std::nullopt);
  // The extra pattern extends/changes the final window signature chain.
  EXPECT_NE(with_det.window_signatures.size(),
            without.window_signatures.size());
}

TEST(Stumps, RuntimeModel) {
  StumpsConfig cfg;
  cfg.max_chain_length = 77;
  cfg.test_frequency_hz = 40e6;
  EXPECT_EQ(cfg.CyclesPerPattern(), 78u);
  // 500,000 patterns at 78 cycles / 40 MHz = 975 ms (paper's profile 33-36
  // land at ~963-965 ms for 500k PRPs, same magnitude).
  EXPECT_NEAR(cfg.PatternTimeMs(500000), 975.0, 1.0);
}

TEST(Stumps, ResponseDataBytes) {
  auto nl = bistdse::testing::MakeSmallRandom(59, 100);
  StumpsConfig cfg = SmallConfig();
  StumpsSession session(nl, cfg);
  // 100 patterns, window 16 -> 7 windows x 4 bytes.
  EXPECT_EQ(session.ResponseDataBytes(100), 7u * 4u);
}

}  // namespace
}  // namespace bistdse::bist
