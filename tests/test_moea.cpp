#include <gtest/gtest.h>

#include <cmath>

#include "moea/archive.hpp"
#include "moea/indicators.hpp"
#include "moea/nsga2.hpp"

namespace bistdse::moea {
namespace {

TEST(Dominance, BasicRelations) {
  EXPECT_TRUE(Dominates({1, 2}, {2, 3}));
  EXPECT_TRUE(Dominates({1, 2}, {1, 3}));
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}));
  EXPECT_FALSE(Dominates({1, 3}, {2, 2}));
  EXPECT_THROW(Dominates({1}, {1, 2}), std::invalid_argument);
}

TEST(Dominance, FastNonDominatedSortLayers) {
  std::vector<ObjectiveVector> pts = {
      {1, 4}, {2, 2}, {4, 1},  // front 0
      {3, 3}, {2, 5},          // front 1
      {5, 5},                  // front 2
  };
  const auto fronts = FastNonDominatedSort(pts);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0].size(), 3u);
  EXPECT_EQ(fronts[1].size(), 2u);
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{5}));
}

TEST(Dominance, CrowdingBoundariesAreInfinite) {
  std::vector<ObjectiveVector> pts = {{1, 4}, {2, 2}, {4, 1}};
  std::vector<std::size_t> front = {0, 1, 2};
  const auto cd = CrowdingDistance(pts, front);
  EXPECT_TRUE(std::isinf(cd[0]));
  EXPECT_TRUE(std::isinf(cd[2]));
  EXPECT_FALSE(std::isinf(cd[1]));
  EXPECT_GT(cd[1], 0.0);
}

TEST(Archive, KeepsOnlyNonDominated) {
  ParetoArchive archive;
  EXPECT_TRUE(archive.Offer({2, 2}, 0));
  EXPECT_FALSE(archive.Offer({3, 3}, 1));   // dominated
  EXPECT_FALSE(archive.Offer({2, 2}, 2));   // duplicate
  EXPECT_TRUE(archive.Offer({1, 3}, 3));    // incomparable
  EXPECT_TRUE(archive.Offer({1, 1}, 4));    // dominates everything
  ASSERT_EQ(archive.Size(), 1u);
  EXPECT_EQ(archive.Entries()[0].payload, 4u);
}

TEST(Indicators, Hypervolume2D) {
  // Two rectangles: (1,2)->(4,4) area 3*2=6, plus (2,1): adds (4-2)*(2-1)=2.
  std::vector<ObjectiveVector> front = {{1, 2}, {2, 1}};
  EXPECT_DOUBLE_EQ(Hypervolume(front, {4, 4}), 8.0);
  EXPECT_DOUBLE_EQ(Hypervolume({}, {4, 4}), 0.0);
}

TEST(Indicators, Hypervolume3D) {
  // Single point: box volume.
  std::vector<ObjectiveVector> one = {{0, 0, 0}};
  EXPECT_DOUBLE_EQ(Hypervolume(one, {2, 3, 4}), 24.0);
  // Two incomparable points with known union volume.
  std::vector<ObjectiveVector> two = {{0, 1, 1}, {1, 0, 0}};
  // vol(A)= (2-0)(2-1)(2-1) = 2; vol(B) = (2-1)(2-0)(2-0)=4;
  // intersection = (2-1)(2-1)(2-1)=1 -> union 5.
  EXPECT_DOUBLE_EQ(Hypervolume(two, {2, 2, 2}), 5.0);
}

TEST(Indicators, Hypervolume4DMatchesMonteCarlo) {
  // Exact HSO volume vs Monte Carlo estimate on a random 4-D front.
  util::SplitMix64 rng(21);
  std::vector<ObjectiveVector> front;
  for (int i = 0; i < 12; ++i) {
    front.push_back({rng.UnitReal(), rng.UnitReal(), rng.UnitReal(),
                     rng.UnitReal()});
  }
  const ObjectiveVector ref = {1.0, 1.0, 1.0, 1.0};
  const double exact = Hypervolume(front, ref);

  std::size_t hits = 0;
  constexpr std::size_t kSamples = 200000;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const ObjectiveVector x = {rng.UnitReal(), rng.UnitReal(), rng.UnitReal(),
                               rng.UnitReal()};
    for (const auto& p : front) {
      if (p[0] <= x[0] && p[1] <= x[1] && p[2] <= x[2] && p[3] <= x[3]) {
        ++hits;
        break;
      }
    }
  }
  const double estimate = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(exact, estimate, 0.01);
}

TEST(Indicators, Hypervolume4DSinglePointBox) {
  std::vector<ObjectiveVector> one = {{0, 0, 0, 0}};
  EXPECT_DOUBLE_EQ(Hypervolume(one, {2, 3, 4, 5}), 120.0);
}

TEST(Indicators, HypervolumeGrowsWithBetterFront) {
  std::vector<ObjectiveVector> worse = {{3, 3}};
  std::vector<ObjectiveVector> better = {{3, 3}, {1, 4}, {2, 2}};
  EXPECT_GT(Hypervolume(better, {5, 5}), Hypervolume(worse, {5, 5}));
}

TEST(Indicators, AdditiveEpsilon) {
  std::vector<ObjectiveVector> a = {{1, 1}};
  std::vector<ObjectiveVector> b = {{2, 2}};
  EXPECT_DOUBLE_EQ(AdditiveEpsilon(a, b), -1.0);  // a strictly better
  EXPECT_DOUBLE_EQ(AdditiveEpsilon(b, a), 1.0);
  EXPECT_DOUBLE_EQ(AdditiveEpsilon(a, a), 0.0);
}

TEST(Genotype, DecisionOrderSortsByPriority) {
  Genotype g;
  g.priorities = {0.2, 0.9, 0.5};
  g.phases = {0, 1, 0};
  EXPECT_EQ(g.DecisionOrder(), (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(Genotype, OperatorsAreDeterministic) {
  util::SplitMix64 r1(5), r2(5);
  const auto a1 = RandomGenotype(20, r1);
  const auto a2 = RandomGenotype(20, r2);
  EXPECT_EQ(a1.priorities, a2.priorities);
  EXPECT_EQ(a1.phases, a2.phases);
}

TEST(Genotype, MutationRespectsRate) {
  util::SplitMix64 rng(9);
  Genotype g = RandomGenotype(1000, rng);
  const Genotype before = g;
  Mutate(g, 0.0, rng);
  EXPECT_EQ(g.priorities, before.priorities);
  Mutate(g, 1.0, rng);
  EXPECT_NE(g.priorities, before.priorities);
}

// NSGA-II on a classic benchmark: minimize (f1, f2) of Schaffer's problem
// encoded through a genotype -> x in [-4, 4] decoding.
TEST(Nsga2, ConvergesOnSchafferProblem) {
  Nsga2Config cfg;
  cfg.population_size = 40;
  cfg.genotype_size = 16;
  cfg.seed = 3;
  Nsga2 nsga2(cfg);

  const auto evaluator =
      [](const Genotype& g) -> std::optional<ObjectiveVector> {
    // Decode bits -> x in [-4, 4].
    double x = 0.0;
    for (std::size_t i = 0; i < g.Size(); ++i) {
      if (g.phases[i]) x += 1.0 / static_cast<double>(1ull << (i + 1));
    }
    x = x * 8.0 - 4.0;
    return ObjectiveVector{x * x, (x - 2.0) * (x - 2.0)};
  };

  const auto result = nsga2.Run(evaluator, 4000);
  EXPECT_EQ(result.evaluations, 4000u);
  ASSERT_GT(result.archive.Size(), 5u);

  // The Pareto set is x in [0, 2]; on it sqrt(f1) + sqrt(f2) = 2, and
  // min(f1 + f2) = 2 (attained at x = 1).
  double best_sum = 1e9;
  for (const auto& e : result.archive.Entries()) {
    best_sum = std::min(best_sum, e.objectives[0] + e.objectives[1]);
    const double s = std::sqrt(e.objectives[0]) + std::sqrt(e.objectives[1]);
    EXPECT_NEAR(s, 2.0, 0.3);
  }
  EXPECT_NEAR(best_sum, 2.0, 0.2);
}

TEST(Nsga2, InfeasibleEvaluationsAreTolerated) {
  Nsga2Config cfg;
  cfg.population_size = 10;
  cfg.genotype_size = 8;
  cfg.seed = 1;
  Nsga2 nsga2(cfg);
  int calls = 0;
  const auto evaluator =
      [&](const Genotype& g) -> std::optional<ObjectiveVector> {
    ++calls;
    if (calls % 3 == 0) return std::nullopt;  // every third decode "fails"
    double ones = 0;
    for (auto p : g.phases) ones += p;
    return ObjectiveVector{ones, -ones};
  };
  const auto result = nsga2.Run(evaluator, 500);
  EXPECT_EQ(result.evaluations, 500u);
  EXPECT_GE(result.archive.Size(), 1u);
}

TEST(Nsga2, RejectsBadConfig) {
  Nsga2Config cfg;
  cfg.genotype_size = 0;
  EXPECT_THROW(Nsga2{cfg}, std::invalid_argument);
  cfg.genotype_size = 4;
  cfg.population_size = 1;
  EXPECT_THROW(Nsga2{cfg}, std::invalid_argument);
}

TEST(Nsga2, DeterministicForFixedSeed) {
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.genotype_size = 10;
  cfg.seed = 77;
  const auto evaluator =
      [](const Genotype& g) -> std::optional<ObjectiveVector> {
    double ones = 0;
    for (auto p : g.phases) ones += p;
    return ObjectiveVector{ones, 10.0 - ones};
  };
  Nsga2 a(cfg), b(cfg);
  const auto ra = a.Run(evaluator, 300);
  const auto rb = b.Run(evaluator, 300);
  ASSERT_EQ(ra.archive.Size(), rb.archive.Size());
  for (std::size_t i = 0; i < ra.archive.Size(); ++i) {
    EXPECT_EQ(ra.archive.Entries()[i].objectives,
              rb.archive.Entries()[i].objectives);
  }
}

}  // namespace
}  // namespace bistdse::moea
