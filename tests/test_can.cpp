#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "can/bus.hpp"
#include "can/mirroring.hpp"
#include "can/simulator.hpp"

namespace bistdse::can {
namespace {

CanMessage Msg(CanId id, std::uint32_t bytes, double period_ms,
               const std::string& name = {}) {
  CanMessage m;
  m.id = id;
  m.payload_bytes = bytes;
  m.period_ms = period_ms;
  m.name = name.empty() ? "m" + std::to_string(id) : name;
  return m;
}

TEST(CanMessage, WorstCaseFrameBits) {
  // 8-byte frame: 34 + 64 + 13 + floor(97/4) = 135 bits.
  EXPECT_EQ(Msg(1, 8, 10).WorstCaseFrameBits(), 135u);
  // 0-byte frame: 34 + 0 + 13 + floor(33/4) = 55 bits.
  EXPECT_EQ(Msg(1, 0, 10).WorstCaseFrameBits(), 55u);
  // 1-byte frame: 34 + 8 + 13 + floor(41/4) = 65 bits.
  EXPECT_EQ(Msg(1, 1, 10).WorstCaseFrameBits(), 65u);
}

TEST(CanMessage, ExtendedIdFramesAreLonger) {
  CanMessage std_id = Msg(1, 8, 10);
  CanMessage ext_id = std_id;
  ext_id.extended_id = true;
  // 29-bit id: 54 + 64 + 13 + floor(117/4) = 160 bits (vs 135).
  EXPECT_EQ(ext_id.WorstCaseFrameBits(), 160u);
  EXPECT_GT(ext_id.FrameTimeMs(500e3), std_id.FrameTimeMs(500e3));
}

TEST(CanBus, JitterRaisesResponseTimes) {
  CanBus calm("a", 500e3);
  CanBus jittery("b", 500e3);
  CanMessage hi = Msg(1, 8, 2);
  CanMessage lo = Msg(2, 8, 10);
  calm.AddMessage(hi);
  calm.AddMessage(lo);
  hi.jitter_ms = 1.8;  // pushes a second interference hit into the window
  jittery.AddMessage(hi);
  jittery.AddMessage(lo);
  const auto calm_r = calm.ResponseTime(2);
  const auto jittery_r = jittery.ResponseTime(2);
  ASSERT_TRUE(calm_r && jittery_r);
  EXPECT_GT(jittery_r->worst_case_ms, calm_r->worst_case_ms);
}

TEST(CanMessage, FrameTimeAt500k) {
  // 135 bits at 500 kbit/s = 270 us.
  EXPECT_NEAR(Msg(1, 8, 10).FrameTimeMs(500e3), 0.270, 1e-9);
}

TEST(CanBus, RejectsInvalidMessages) {
  CanBus bus("b");
  bus.AddMessage(Msg(1, 8, 10));
  EXPECT_THROW(bus.AddMessage(Msg(1, 8, 10)), std::invalid_argument);
  EXPECT_THROW(bus.AddMessage(Msg(2, 9, 10)), std::invalid_argument);
  EXPECT_THROW(bus.AddMessage(Msg(3, 8, 0.0)), std::invalid_argument);
}

TEST(CanBus, UtilizationSumsFrameShares) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 1.0));  // 0.27 utilization
  bus.AddMessage(Msg(2, 8, 2.7));  // 0.10
  EXPECT_NEAR(bus.Utilization(), 0.27 + 0.1, 1e-9);
}

TEST(CanBus, HighestPriorityOnlyBlockedByOneFrame) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 10));
  bus.AddMessage(Msg(2, 8, 10));
  const auto r = bus.ResponseTime(1);
  ASSERT_TRUE(r.has_value());
  // R(highest) = blocking (one 8-byte frame) + own frame time.
  EXPECT_NEAR(r->worst_case_ms, 0.270 + 0.270, 1e-9);
  EXPECT_TRUE(r->schedulable);
}

TEST(CanBus, LowerPrioritySuffersInterference) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 1.0));
  bus.AddMessage(Msg(2, 8, 1.0));
  bus.AddMessage(Msg(3, 8, 10.0));
  const auto r1 = bus.ResponseTime(1);
  const auto r3 = bus.ResponseTime(3);
  ASSERT_TRUE(r1 && r3);
  // id 3 sees repeated interference from two 1 ms senders; id 1 sees only
  // one blocking frame.
  EXPECT_GT(r3->worst_case_ms, r1->worst_case_ms);
}

TEST(CanBus, ConvergesToUnschedulableFixpoint) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 0.3));  // util 0.9
  bus.AddMessage(Msg(2, 8, 0.5));  // util 0.54 -> total 1.44
  EXPECT_GT(bus.Utilization(), 1.0);
  const auto r2 = bus.ResponseTime(2);
  ASSERT_TRUE(r2.has_value());  // fixpoint exists but misses the deadline
  EXPECT_FALSE(r2->schedulable);
  EXPECT_FALSE(bus.Schedulable());
}

TEST(CanBus, DivergesWhenHigherPrioritySaturates) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 0.2));  // util 1.35 alone
  bus.AddMessage(Msg(2, 8, 1.0));
  EXPECT_FALSE(bus.ResponseTime(2).has_value());
  EXPECT_FALSE(bus.Schedulable());
}

TEST(CanBus, UnknownIdGivesNullopt) {
  CanBus bus("b");
  EXPECT_FALSE(bus.ResponseTime(42).has_value());
}

// Property: the analytical WCRT bound dominates every simulated response
// time, and the bound is tight for the synchronous release case of the
// highest-priority messages.
TEST(CanSimulator, AnalysisBoundsSimulation) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 2, 5));
  bus.AddMessage(Msg(2, 8, 10));
  bus.AddMessage(Msg(3, 4, 10));
  bus.AddMessage(Msg(4, 8, 20));
  bus.AddMessage(Msg(5, 1, 50));
  ASSERT_TRUE(bus.Schedulable());

  CanSimulator simulator(bus);
  const auto sim = simulator.Run(5000.0);
  for (const auto& [key, stats] : sim.per_message) {
    ASSERT_GT(stats.frames_sent, 0u);
    const auto bound = bus.ResponseTime(key.id);
    ASSERT_TRUE(bound.has_value());
    EXPECT_LE(stats.max_response_ms, bound->worst_case_ms + 1e-9)
        << "id " << key.id;
  }
  EXPECT_GT(sim.Utilization(), 0.0);
  EXPECT_LE(sim.Utilization(), 1.0 + 1e-9);
}

TEST(CanSimulator, StaggeredOffsetsReduceResponses) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 2));
  bus.AddMessage(Msg(2, 8, 2));
  bus.AddMessage(Msg(3, 8, 2));
  CanSimulator simulator(bus);
  const auto sync = simulator.Run(1000.0);
  const auto staggered =
      simulator.Run(1000.0, {{1, 0.0}, {2, 0.6}, {3, 1.2}});
  EXPECT_LE(staggered.Of(3).max_response_ms, sync.Of(3).max_response_ms);
}

// Regression: stats used to be keyed by CAN id alone, so merging the results
// of two segments silently fused messages that reuse an id (gateways re-map
// ids per bus, making reuse the common case, not the exception).
TEST(CanSimulator, StatsKeyedByBusAndId) {
  CanBus body("body", 500e3);
  body.AddMessage(Msg(1, 8, 10, "speed"));
  CanBus chassis("chassis", 500e3);
  chassis.AddMessage(Msg(1, 2, 5, "brake"));  // same id, different message

  auto merged = CanSimulator(body).Run(1000.0);
  merged.Merge(CanSimulator(chassis).Run(1000.0));

  ASSERT_EQ(merged.per_message.size(), 2u);
  const auto& body_stats = merged.per_message.at({"body", 1});
  const auto& chassis_stats = merged.per_message.at({"chassis", 1});
  EXPECT_EQ(body_stats.frames_sent, 100u);
  EXPECT_EQ(chassis_stats.frames_sent, 200u);
  EXPECT_NE(body_stats.max_response_ms, chassis_stats.max_response_ms);

  // The id-only accessor refuses to guess between the two buses...
  EXPECT_THROW(merged.Of(1), std::logic_error);
  // ...and merging the same segment twice is a hard error, not a clobber.
  EXPECT_THROW(merged.Merge(CanSimulator(body).Run(1.0)), std::logic_error);
  EXPECT_THROW(merged.Of(999), std::out_of_range);
}

TEST(Mirroring, Eq1TransferTime) {
  // Paper Eq. (1): q = s(b^D) / sum s(c)/p(c).
  std::vector<CanMessage> functional = {Msg(10, 8, 10), Msg(20, 4, 20)};
  // bytes/ms: 8/10 + 4/20 = 1.0 -> 1 MB takes 1e6 ms.
  EXPECT_NEAR(MirroredTransferTimeMs(1000000, functional), 1e6, 1e-3);
  // 455061 bytes (profile 4) over 1 byte/ms = 455 s.
  EXPECT_NEAR(MirroredTransferTimeMs(455061, functional), 455061.0, 1e-3);
}

TEST(Mirroring, NoFunctionalMessagesMeansNoBandwidth) {
  EXPECT_TRUE(std::isinf(MirroredTransferTimeMs(100, {})));
}

TEST(Mirroring, MirroredMessagesKeepTimingProperties) {
  std::vector<CanMessage> functional = {Msg(16, 8, 10, "speed"),
                                        Msg(32, 2, 20, "torque")};
  const auto mirrored = MakeMirroredMessages(functional, 1);
  ASSERT_EQ(mirrored.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(mirrored[i].id, functional[i].id + 1);
    EXPECT_EQ(mirrored[i].payload_bytes, functional[i].payload_bytes);
    EXPECT_EQ(mirrored[i].period_ms, functional[i].period_ms);
    EXPECT_EQ(mirrored[i].name, functional[i].name + "'");
  }
}

TEST(Mirroring, MirroredTransferIsNonIntrusive) {
  // Sparse ids so the +1 mirror offset preserves relative priority.
  CanBus bus("body", 500e3);
  std::vector<CanMessage> ecu = {Msg(16, 8, 5, "e1"), Msg(48, 4, 10, "e2")};
  bus.AddMessage(Msg(0, 4, 5));
  bus.AddMessage(ecu[0]);
  bus.AddMessage(Msg(32, 8, 10));
  bus.AddMessage(ecu[1]);
  bus.AddMessage(Msg(64, 6, 20));
  ASSERT_TRUE(bus.Schedulable());

  const auto mirrored = MakeMirroredMessages(ecu, 1);
  const auto report = CheckNonIntrusiveness(bus, ecu, mirrored);
  EXPECT_TRUE(report.non_intrusive);
  EXPECT_NEAR(report.max_wcrt_increase_ms, 0.0, 1e-12);
  EXPECT_TRUE(report.newly_unschedulable.empty());
}

TEST(Mirroring, BurstTransferIsIntrusive) {
  // All functional frames are small: the 8-byte burst frames then raise the
  // worst-case blocking of every higher-priority message — the "could affect
  // the timing of functional messages ... even with lowest priority" effect
  // of paper §III-B (non-preemptive CAN arbitration).
  CanBus bus("body", 500e3);
  std::vector<CanMessage> ecu = {Msg(16, 2, 5, "e1")};
  bus.AddMessage(Msg(0, 2, 5));
  bus.AddMessage(ecu[0]);
  bus.AddMessage(Msg(32, 2, 10));
  bus.AddMessage(Msg(64, 2, 20));
  ASSERT_TRUE(bus.Schedulable());

  const auto burst = MakeBurstTransfer(455061, 100, bus.BitrateBps());
  EXPECT_EQ(burst.frames, (455061u + 7) / 8);
  std::vector<CanMessage> test_set = {burst.message};
  const auto report = CheckNonIntrusiveness(bus, ecu, test_set);
  EXPECT_FALSE(report.non_intrusive);
  EXPECT_GT(report.max_wcrt_increase_ms, 0.0);
}

TEST(Mirroring, BurstFasterButIntrusive) {
  // The ablation's core trade-off: the burst finishes sooner than the
  // mirrored transfer, but only by breaking non-intrusiveness.
  std::vector<CanMessage> functional = {Msg(16, 8, 10)};
  const std::uint64_t bytes = 100000;
  const auto burst = MakeBurstTransfer(bytes, 100, 500e3);
  EXPECT_LT(burst.wire_time_ms, MirroredTransferTimeMs(bytes, functional));
}

TEST(Mirroring, PlannedOffsetsReduceObservedResponses) {
  CanBus bus("b", 500e3);
  bus.AddMessage(Msg(1, 8, 2));
  bus.AddMessage(Msg(2, 8, 2));
  bus.AddMessage(Msg(3, 8, 2));
  bus.AddMessage(Msg(4, 8, 4));
  CanSimulator simulator(bus);
  const auto sync = simulator.Run(2000.0);
  const auto offsets = PlanReleaseOffsets(bus);
  const auto planned = simulator.Run(2000.0, offsets);
  // The lowest-priority message benefits most from de-phasing.
  EXPECT_LT(planned.Of(4).max_response_ms, sync.Of(4).max_response_ms);
  // Offsets never violate the analytical bounds.
  for (const auto& [key, stats] : planned.per_message) {
    const auto bound = bus.ResponseTime(key.id);
    ASSERT_TRUE(bound.has_value());
    EXPECT_LE(stats.max_response_ms, bound->worst_case_ms + 1e-9);
  }
}

// Simulation-level validation of §III-B: swapping an ECU's functional
// messages for their mirrors leaves every other message's observed response
// times bit-identical, while a burst shifts them.
TEST(Mirroring, SimulationConfirmsTimingTransparency) {
  CanBus base("body", 500e3);
  std::vector<CanMessage> ecu = {Msg(16, 4, 5, "e1"), Msg(48, 2, 10, "e2")};
  base.AddMessage(Msg(0, 2, 5));
  base.AddMessage(ecu[0]);
  base.AddMessage(Msg(32, 4, 10));
  base.AddMessage(ecu[1]);
  base.AddMessage(Msg(64, 2, 20));

  CanBus swapped("body'", 500e3);
  const auto mirrored = MakeMirroredMessages(ecu, 1);
  for (const CanMessage& m : base.Messages()) {
    if (m.id == 16 || m.id == 48) continue;
    swapped.AddMessage(m);
  }
  for (const CanMessage& m : mirrored) swapped.AddMessage(m);

  CanSimulator sim_base(base), sim_swapped(swapped);
  const auto rb = sim_base.Run(2000.0);
  const auto rs = sim_swapped.Run(2000.0);
  for (CanId id : {0u, 32u, 64u}) {
    EXPECT_DOUBLE_EQ(rs.Of(id).max_response_ms, rb.Of(id).max_response_ms)
        << "id " << id;
    EXPECT_EQ(rs.Of(id).frames_sent, rb.Of(id).frames_sent);
  }
  // The mirrors themselves observe the same timing as the originals.
  EXPECT_DOUBLE_EQ(rs.Of(17).max_response_ms, rb.Of(16).max_response_ms);
  EXPECT_DOUBLE_EQ(rs.Of(49).max_response_ms, rb.Of(48).max_response_ms);
}

}  // namespace
}  // namespace bistdse::can
