// Unit tests of the discrete-event network engine, the segmented transport,
// the fault injector, and the event trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "net/engine.hpp"
#include "net/fault_injector.hpp"
#include "net/trace.hpp"
#include "net/transport.hpp"

namespace bistdse::net {
namespace {

can::CanMessage Msg(can::CanId id, std::uint32_t bytes, double period_ms) {
  can::CanMessage m;
  m.id = id;
  m.payload_bytes = bytes;
  m.period_ms = period_ms;
  m.name = "m" + std::to_string(id);
  return m;
}

PeriodicSlot Slot(can::CanMessage message, std::vector<BusIndex> path,
                  std::vector<can::CanId> hop_ids, SlotClient* client = nullptr,
                  double first_release_ms = 0.0) {
  PeriodicSlot slot;
  slot.message = std::move(message);
  slot.path = std::move(path);
  slot.hop_ids = std::move(hop_ids);
  slot.client = client;
  slot.first_release_ms = first_release_ms;
  return slot;
}

TEST(NetworkEngine, LowestIdWinsArbitration) {
  NetworkEngine engine;
  const BusIndex bus = engine.AddBus("b", 500e3);
  // Both released at t = 0; the lower id must transmit first, the higher id
  // waits exactly one frame time.
  engine.AddSlot(Slot(Msg(1, 8, 10), {bus}, {1}));
  engine.AddSlot(Slot(Msg(2, 8, 10), {bus}, {2}));
  engine.Run(99.5);  // ten whole periods (a release at t=100 would start an
                     // eleventh frame and skew the busy-time bookkeeping)

  const double frame_ms = Msg(1, 8, 10).FrameTimeMs(500e3);
  EXPECT_NEAR(engine.StatsOf(0, 0).max_response_ms, frame_ms, 1e-9);
  EXPECT_NEAR(engine.StatsOf(1, 0).max_response_ms, 2 * frame_ms, 1e-9);
  EXPECT_EQ(engine.StatsOf(0, 0).frames_sent, 10u);
  EXPECT_EQ(engine.StatsOf(1, 0).frames_sent, 10u);
  EXPECT_NEAR(engine.BusBusyMs(bus), 20 * frame_ms, 1e-9);
}

TEST(NetworkEngine, GatewayForwardsAcrossSegments) {
  EventTrace trace;
  NetworkEngine engine(nullptr, &trace, /*trace_frames=*/true);
  engine.SetGatewayDelayMs(0.5);
  const BusIndex b0 = engine.AddBus("b0", 500e3);
  const BusIndex b1 = engine.AddBus("b1", 500e3);
  // One message crossing both segments with remapped ids.
  engine.AddSlot(Slot(Msg(4, 8, 10), {b0, b1}, {4, 20}));
  engine.Run(9.0);  // within one period: exactly one frame per segment

  EXPECT_EQ(engine.StatsOf(0, 0).frames_sent, 1u);
  EXPECT_EQ(engine.StatsOf(0, 1).frames_sent, 1u);
  const double frame_ms = Msg(4, 8, 10).FrameTimeMs(500e3);
  // Second hop completes after frame + gateway delay + frame.
  EXPECT_NEAR(engine.StatsOf(0, 1).max_response_ms, frame_ms, 1e-9);
  EXPECT_EQ(trace.CountKind(TraceEventKind::GatewayForward), 1u);
  EXPECT_NEAR(engine.BusBusyMs(b0), frame_ms, 1e-9);
  EXPECT_NEAR(engine.BusBusyMs(b1), frame_ms, 1e-9);
}

TEST(NetworkEngine, RejectsMalformedSlots) {
  NetworkEngine engine;
  const BusIndex bus = engine.AddBus("b", 500e3);
  EXPECT_THROW(engine.AddSlot(Slot(Msg(1, 8, 10), {}, {})),
               std::invalid_argument);
  EXPECT_THROW(engine.AddSlot(Slot(Msg(1, 8, 10), {bus}, {1, 2})),
               std::invalid_argument);
  EXPECT_THROW(engine.AddSlot(Slot(Msg(1, 8, 0), {bus}, {1})),
               std::invalid_argument);
  EXPECT_THROW(engine.AddSlot(Slot(Msg(1, 8, 10), {bus, bus}, {1, 2},
                                   reinterpret_cast<SlotClient*>(0x1))),
               std::invalid_argument);
}

TEST(SegmentedTransfer, ZeroLossRateMatchesSlotGoodput) {
  NetworkEngine engine;
  const BusIndex bus = engine.AddBus("b", 500e3);
  SegmentedTransfer transfer(1, "t", 8000, {}, nullptr);
  // 8 B every 1 ms -> 8 B/ms; first release after one period.
  engine.AddSlot(Slot(Msg(2, 8, 1.0), {bus}, {2}, &transfer, 1.0));
  transfer.Begin(0.0);
  engine.Run(5000.0, [&] { return transfer.Finished(); });

  ASSERT_TRUE(transfer.Done());
  EXPECT_EQ(transfer.Stats().frames_sent, 1000u);
  EXPECT_EQ(transfer.Stats().retransmissions, 0u);
  EXPECT_GE(transfer.ElapsedMs(), 1000.0);       // never beats Eq. 1
  EXPECT_LE(transfer.ElapsedMs(), 1100.0);       // small FC/discretization tail
  EXPECT_GT(transfer.Stats().fc_grants, 0u);
}

TEST(SegmentedTransfer, SurvivesHeavyLossViaRetries) {
  FaultInjector injector({.drop_rate = 0.2, .corrupt_rate = 0.05, .seed = 9});
  EventTrace trace;
  NetworkEngine engine(&injector, &trace);
  const BusIndex bus = engine.AddBus("b", 500e3);
  TransportConfig config;
  config.max_retries = 32;
  SegmentedTransfer transfer(1, "t", 2000, config, &trace);
  engine.AddSlot(Slot(Msg(2, 8, 1.0), {bus}, {2}, &transfer, 1.0));
  transfer.Begin(0.0);
  engine.Run(60000.0, [&] { return transfer.Finished(); });

  ASSERT_TRUE(transfer.Done()) << "failed: " << transfer.Failed();
  EXPECT_GT(transfer.Stats().retransmissions, 0u);
  EXPECT_GT(transfer.Stats().dropped + transfer.Stats().corrupted, 0u);
  EXPECT_EQ(trace.CountKind(TraceEventKind::Retransmission),
            transfer.Stats().retransmissions);
  // 25 % loss stretches the transfer well past the lossless 250 ms.
  EXPECT_GT(transfer.ElapsedMs(), 250.0);
}

TEST(SegmentedTransfer, ExhaustedRetryBudgetFailsTheTransfer) {
  FaultInjector injector({.drop_rate = 1.0, .seed = 3});  // every frame lost
  EventTrace trace;
  NetworkEngine engine(&injector, &trace);
  const BusIndex bus = engine.AddBus("b", 500e3);
  SegmentedTransfer transfer(1, "t", 64, {}, &trace);
  engine.AddSlot(Slot(Msg(2, 8, 1.0), {bus}, {2}, &transfer, 1.0));
  transfer.Begin(0.0);
  engine.Run(10000.0, [&] { return transfer.Finished(); });

  EXPECT_TRUE(transfer.Failed());
  EXPECT_FALSE(transfer.Done());
  EXPECT_EQ(trace.CountKind(TraceEventKind::TransferFailed), 1u);
  EXPECT_EQ(transfer.Stats().max_retry_burst, 9u);  // max_retries + 1
}

TEST(SegmentedTransfer, TimeoutFailsSlowTransfers) {
  NetworkEngine engine;
  const BusIndex bus = engine.AddBus("b", 500e3);
  TransportConfig config;
  config.timeout_ms = 50.0;  // 8 B/ms cannot move 8000 B in 50 ms
  SegmentedTransfer transfer(1, "t", 8000, config, nullptr);
  engine.AddSlot(Slot(Msg(2, 8, 1.0), {bus}, {2}, &transfer, 1.0));
  transfer.Begin(0.0);
  engine.Run(5000.0, [&] { return transfer.Finished(); });
  EXPECT_TRUE(transfer.Failed());
}

TEST(FaultInjector, DeterministicAndCounted) {
  FaultInjectorConfig config{.drop_rate = 0.3, .corrupt_rate = 0.1, .seed = 5};
  FaultInjector a(config), b(config);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    const FrameFate fa = a.Judge(true);
    ASSERT_EQ(static_cast<int>(fa), static_cast<int>(b.Judge(true)));
    if (fa == FrameFate::Delivered) ++delivered;
  }
  EXPECT_EQ(a.TotalDropped(), b.TotalDropped());
  // ~60 % delivered, +-5 % tolerance over 2000 draws.
  EXPECT_NEAR(static_cast<double>(delivered) / 2000.0, 0.6, 0.05);

  FaultInjectorConfig off = config;
  off.affect_functional = false;
  FaultInjector c(off);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<int>(c.Judge(false)),
              static_cast<int>(FrameFate::Delivered));
  }
}

TEST(EventTrace, JsonlIsOneObjectPerLineWithEscaping) {
  EventTrace trace;
  trace.Record({1.5, TraceEventKind::PhaseStart, "body", 3, 7, 2,
                "note with \"quotes\" and \\backslash"});
  trace.Record({2.0, TraceEventKind::FrameDropped, "chassis", 4, 0, 0, ""});
  std::ostringstream out;
  trace.WriteJsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"kind\":\"phase_start\""), std::string::npos);
  EXPECT_NE(text.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\backslash"), std::string::npos);
  EXPECT_EQ(trace.CountKind(TraceEventKind::FrameDropped), 1u);
  trace.Clear();
  EXPECT_TRUE(trace.Events().empty());
}

}  // namespace
}  // namespace bistdse::net
