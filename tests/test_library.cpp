#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "util/rng.hpp"

namespace bistdse::netlist {
namespace {

using sim::LogicSimulator;
using sim::PatternWord;

/// Drives `ports.a`/`ports.b`/carry with 64 random operand pairs packed into
/// words; returns per-output words.
struct Driver {
  explicit Driver(const Netlist& nl) : simulator(nl), netlist(nl) {}

  void Simulate(const std::vector<PatternWord>& input_words) {
    simulator.Simulate(input_words);
  }

  std::uint64_t OutValue(const std::vector<NodeId>& outs, int lane) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      v |= static_cast<std::uint64_t>((simulator.ValueOf(outs[i]) >> lane) & 1)
           << i;
    }
    return v;
  }

  LogicSimulator simulator;
  const Netlist& netlist;
};

TEST(Library, RippleCarryAdderMatchesArithmetic) {
  constexpr std::uint32_t kBits = 16;
  Netlist nl;
  const auto ports = BuildRippleCarryAdder(nl, kBits);
  nl.Finalize();

  util::SplitMix64 rng(1);
  std::vector<std::uint64_t> a_ops(64), b_ops(64);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  PatternWord cin_word = rng();
  for (int lane = 0; lane < 64; ++lane) {
    a_ops[lane] = rng() & 0xFFFF;
    b_ops[lane] = rng() & 0xFFFF;
    for (std::uint32_t i = 0; i < kBits; ++i) {
      if ((a_ops[lane] >> i) & 1) words[i] |= PatternWord{1} << lane;
      if ((b_ops[lane] >> i) & 1) words[kBits + i] |= PatternWord{1} << lane;
    }
  }
  words[2 * kBits] = cin_word;

  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    const std::uint64_t cin = (cin_word >> lane) & 1;
    const std::uint64_t expected = a_ops[lane] + b_ops[lane] + cin;
    const std::uint64_t sum = driver.OutValue(ports.out, lane);
    const std::uint64_t cout =
        (driver.simulator.ValueOf(ports.carry_out) >> lane) & 1;
    EXPECT_EQ(sum | (cout << kBits), expected) << "lane " << lane;
  }
}

TEST(Library, ArrayMultiplierMatchesArithmetic) {
  constexpr std::uint32_t kBits = 8;
  Netlist nl;
  const auto ports = BuildArrayMultiplier(nl, kBits);
  nl.Finalize();
  ASSERT_EQ(ports.out.size(), 2 * kBits);

  util::SplitMix64 rng(2);
  std::vector<std::uint64_t> a_ops(64), b_ops(64);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  for (int lane = 0; lane < 64; ++lane) {
    a_ops[lane] = rng() & 0xFF;
    b_ops[lane] = rng() & 0xFF;
    for (std::uint32_t i = 0; i < kBits; ++i) {
      if ((a_ops[lane] >> i) & 1) words[i] |= PatternWord{1} << lane;
      if ((b_ops[lane] >> i) & 1) words[kBits + i] |= PatternWord{1} << lane;
    }
  }
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(driver.OutValue(ports.out, lane), a_ops[lane] * b_ops[lane])
        << a_ops[lane] << " * " << b_ops[lane];
  }
}

TEST(Library, EqualityComparator) {
  Netlist nl;
  const auto ports = BuildEqualityComparator(nl, 12);
  nl.Finalize();
  util::SplitMix64 rng(3);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  std::vector<std::uint64_t> a_ops(64), b_ops(64);
  for (int lane = 0; lane < 64; ++lane) {
    a_ops[lane] = rng() & 0xFFF;
    // Half the lanes get a forced match.
    b_ops[lane] = lane % 2 ? a_ops[lane] : (rng() & 0xFFF);
    for (std::uint32_t i = 0; i < 12; ++i) {
      if ((a_ops[lane] >> i) & 1) words[i] |= PatternWord{1} << lane;
      if ((b_ops[lane] >> i) & 1) words[12 + i] |= PatternWord{1} << lane;
    }
  }
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(driver.OutValue(ports.out, lane),
              a_ops[lane] == b_ops[lane] ? 1u : 0u);
  }
}

TEST(Library, ParityTree) {
  Netlist nl;
  const auto ports = BuildParityTree(nl, 17);
  nl.Finalize();
  util::SplitMix64 rng(4);
  std::vector<PatternWord> words(nl.CoreInputs().size());
  for (auto& w : words) w = rng();
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    int parity = 0;
    for (const auto& w : words) parity ^= static_cast<int>((w >> lane) & 1);
    EXPECT_EQ(driver.OutValue(ports.out, lane), static_cast<unsigned>(parity));
  }
}

TEST(Library, MuxTreeSelectsCorrectInput) {
  Netlist nl;
  const auto ports = BuildMuxTree(nl, 3);  // 8:1
  nl.Finalize();
  util::SplitMix64 rng(5);
  std::vector<PatternWord> words(nl.CoreInputs().size());
  for (auto& w : words) w = rng();
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    unsigned sel = 0;
    for (int s = 0; s < 3; ++s) {
      sel |= static_cast<unsigned>((words[8 + s] >> lane) & 1) << s;
    }
    const auto expected = (words[sel] >> lane) & 1;
    EXPECT_EQ(driver.OutValue(ports.out, lane), expected)
        << "lane " << lane << " sel " << sel;
  }
}

TEST(Library, AdderIsFullyTestable) {
  // All collapsed faults of a ripple adder are detectable — a strong joint
  // check of the block generator, fault model and fault simulator.
  Netlist nl;
  BuildRippleCarryAdder(nl, 6);
  nl.Finalize();
  sim::FaultSimulator fsim(nl);
  auto faults = sim::CollapsedFaults(nl);
  std::vector<std::uint8_t> detected(faults.size(), 0);
  util::SplitMix64 rng(6);
  std::vector<PatternWord> words(nl.CoreInputs().size());
  for (int block = 0; block < 8; ++block) {
    for (auto& w : words) w = rng();
    fsim.SetPatternBlock(words);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!detected[i] && fsim.DetectWord(faults[i])) detected[i] = 1;
    }
  }
  std::size_t count = 0;
  for (auto d : detected) count += d;
  EXPECT_EQ(count, faults.size());
}

// Parameterized sweeps: the arithmetic blocks stay golden-model correct at
// every width.
class AdderWidths : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AdderWidths, MatchesArithmetic) {
  const std::uint32_t bits = GetParam();
  Netlist nl;
  const auto ports = BuildRippleCarryAdder(nl, bits);
  nl.Finalize();
  util::SplitMix64 rng(bits);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  std::vector<std::uint64_t> a_ops(64), b_ops(64);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  for (int lane = 0; lane < 64; ++lane) {
    a_ops[lane] = rng() & mask;
    b_ops[lane] = rng() & mask;
    for (std::uint32_t i = 0; i < bits; ++i) {
      if ((a_ops[lane] >> i) & 1) words[i] |= PatternWord{1} << lane;
      if ((b_ops[lane] >> i) & 1) words[bits + i] |= PatternWord{1} << lane;
    }
  }
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    const std::uint64_t sum = driver.OutValue(ports.out, lane);
    const std::uint64_t cout =
        (driver.simulator.ValueOf(ports.carry_out) >> lane) & 1;
    EXPECT_EQ(sum | (cout << bits), a_ops[lane] + b_ops[lane]) << lane;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(2u, 4u, 8u, 16u, 24u, 32u));

class MultiplierWidths : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiplierWidths, MatchesArithmetic) {
  const std::uint32_t bits = GetParam();
  Netlist nl;
  const auto ports = BuildArrayMultiplier(nl, bits);
  nl.Finalize();
  util::SplitMix64 rng(100 + bits);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  std::vector<std::uint64_t> a_ops(64), b_ops(64);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  for (int lane = 0; lane < 64; ++lane) {
    a_ops[lane] = rng() & mask;
    b_ops[lane] = rng() & mask;
    for (std::uint32_t i = 0; i < bits; ++i) {
      if ((a_ops[lane] >> i) & 1) words[i] |= PatternWord{1} << lane;
      if ((b_ops[lane] >> i) & 1) words[bits + i] |= PatternWord{1} << lane;
    }
  }
  Driver driver(nl);
  driver.Simulate(words);
  for (int lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(driver.OutValue(ports.out, lane), a_ops[lane] * b_ops[lane])
        << a_ops[lane] << " * " << b_ops[lane];
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths,
                         ::testing::Values(2u, 3u, 4u, 6u, 10u));

}  // namespace
}  // namespace bistdse::netlist
