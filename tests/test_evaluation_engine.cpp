// The EvaluationEngine refactor's determinism contract:
//   (a) the engine-based Explorer reproduces the front of the legacy
//       composition (per-genotype decode + EvaluateImplementation + local
//       memo) bit-exactly for a fixed seed,
//   (b) the front is invariant across the engine's `threads` setting,
//   (c) explorations sharing one engine score strictly more memo hits than
//       the same explorations on fresh engines — without changing a front.
#include <gtest/gtest.h>

#include <unordered_map>

#include "casestudy/casestudy.hpp"
#include "dse/evaluation_engine.hpp"
#include "dse/exploration.hpp"
#include "dse/parallel.hpp"
#include "moea/nsga2.hpp"
#include "moea/spea2.hpp"
#include "net/session_objective.hpp"

namespace bistdse::dse {
namespace {

casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(6);
  return casestudy::BuildCaseStudy(profiles, 42);
}

/// The pre-refactor Explorer::Run composition: a per-genotype evaluator over
/// a local unordered_map memo and the free EvaluateImplementation, driven
/// through the MOEA's single-evaluator (non-batched) path.
std::vector<ExplorationEntry> LegacyFront(const casestudy::CaseStudy& cs,
                                          MoeaAlgorithm algorithm,
                                          const ExplorationConfig& config) {
  SatDecoder decoder(cs.spec, cs.augmentation, config.validate_each_decode);
  moea::ParetoArchive archive;
  std::vector<ExplorationEntry> store;
  std::unordered_map<std::uint64_t, Objectives> memo;

  const moea::Evaluator evaluator =
      [&](const moea::Genotype& genotype)
      -> std::optional<moea::ObjectiveVector> {
    auto impl = decoder.Decode(genotype);
    if (!impl) return std::nullopt;
    const std::uint64_t signature = ImplementationSignature(*impl);
    const auto hit = memo.find(signature);
    const Objectives objectives =
        hit != memo.end()
            ? hit->second
            : memo
                  .emplace(signature,
                           EvaluateImplementation(cs.spec, cs.augmentation,
                                                  *impl, config.evaluation))
                  .first->second;
    auto vec = objectives.ToMinimizationVector(false);
    if (archive.Offer(vec, store.size())) {
      store.push_back({objectives, std::move(*impl)});
    }
    return vec;
  };

  if (algorithm == MoeaAlgorithm::Spea2) {
    moea::Spea2Config moea_config;
    moea_config.population_size = config.population_size;
    moea_config.archive_size = config.population_size;
    moea_config.genotype_size = decoder.GenotypeSize();
    moea_config.mutation_rate = config.mutation_rate;
    moea_config.seed = config.seed;
    moea::Spea2 spea2(moea_config);
    spea2.Run(evaluator, config.evaluations);
  } else {
    moea::Nsga2Config moea_config;
    moea_config.population_size = config.population_size;
    moea_config.genotype_size = decoder.GenotypeSize();
    moea_config.mutation_rate = config.mutation_rate;
    moea_config.seed = config.seed;
    moea::Nsga2 nsga2(moea_config);
    nsga2.Run(evaluator, config.evaluations);
  }

  std::vector<ExplorationEntry> front;
  for (const auto& entry : archive.Entries()) {
    front.push_back(store[entry.payload]);
  }
  return front;
}

void ExpectSameFront(const std::vector<ExplorationEntry>& a,
                     const std::vector<ExplorationEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives.ToMinimizationVector(),
              b[i].objectives.ToMinimizationVector())
        << "entry " << i;
    EXPECT_EQ(a[i].implementation.binding, b[i].implementation.binding)
        << "entry " << i;
  }
}

TEST(EvaluationEngine, ReproducesLegacyFrontNsga2) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 400;
  cfg.population_size = 16;
  cfg.seed = 1;
  cfg.seed_corners = false;  // the legacy reference seeds no corners
  cfg.threads = 1;

  const auto legacy = LegacyFront(cs, MoeaAlgorithm::Nsga2, cfg);
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  ASSERT_GT(legacy.size(), 2u);
  ExpectSameFront(legacy, result.pareto);
}

TEST(EvaluationEngine, ReproducesLegacyFrontSpea2) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.algorithm = MoeaAlgorithm::Spea2;
  cfg.evaluations = 400;
  cfg.population_size = 16;
  cfg.seed = 1;
  cfg.seed_corners = false;
  cfg.threads = 1;

  const auto legacy = LegacyFront(cs, MoeaAlgorithm::Spea2, cfg);
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  ASSERT_GT(legacy.size(), 2u);
  ExpectSameFront(legacy, result.pareto);
}

TEST(EvaluationEngine, FrontInvariantAcrossThreadCounts) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 400;
  cfg.population_size = 16;
  cfg.seed = 3;

  cfg.threads = 1;
  Explorer reference(cs.spec, cs.augmentation, cfg);
  const auto expected = reference.Run();
  ASSERT_GT(expected.pareto.size(), 2u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8},
                                    std::size_t{0}}) {
    cfg.threads = threads;
    Explorer explorer(cs.spec, cs.augmentation, cfg);
    const auto result = explorer.Run();
    EXPECT_EQ(result.evaluations, expected.evaluations) << threads;
    EXPECT_EQ(result.eval_cache_hits, expected.eval_cache_hits) << threads;
    ExpectSameFront(expected.pareto, result.pareto);
  }
}

TEST(EvaluationEngine, MergedIslandFrontInvariantAcrossThreadCounts) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 1;

  cfg.threads = 1;
  const auto expected = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  ASSERT_GT(expected.pareto.size(), 2u);
  EXPECT_EQ(expected.island_front_sizes.size(), 2u);

  cfg.threads = 8;
  const auto result = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  EXPECT_EQ(result.evaluations, expected.evaluations);
  ExpectSameFront(expected.pareto, result.pareto);
}

TEST(EvaluationEngine, SharedEngineScoresCrossExplorationCacheHits) {
  auto cs = SmallCaseStudy();
  ExplorationConfig first;
  first.evaluations = 300;
  first.population_size = 16;
  first.seed = 1;
  ExplorationConfig second = first;
  second.seed = 2;

  // Baseline: each exploration on its own engine.
  Explorer fresh_a(cs.spec, cs.augmentation, first);
  const auto result_a = fresh_a.Run();
  Explorer fresh_b(cs.spec, cs.augmentation, second);
  const auto result_b = fresh_b.Run();
  const std::size_t fresh_hits =
      result_a.eval_cache_hits + result_b.eval_cache_hits;

  // Shared engine, sequentially (deterministic hit counts): the corner
  // seeds alone guarantee overlapping implementations across seeds.
  EvaluationEngine engine(cs.spec, cs.augmentation);
  Explorer shared_a(engine, first);
  const auto shared_result_a = shared_a.Run();
  Explorer shared_b(engine, second);
  const auto shared_result_b = shared_b.Run();
  const std::size_t shared_hits =
      shared_result_a.eval_cache_hits + shared_result_b.eval_cache_hits;

  EXPECT_GT(shared_hits, fresh_hits);
  EXPECT_EQ(engine.CacheHits(), shared_hits);
  EXPECT_GT(engine.CacheSize(), 0u);
  // Sharing the memo must not change any front.
  ExpectSameFront(result_a.pareto, shared_result_a.pareto);
  ExpectSameFront(result_b.pareto, shared_result_b.pareto);
}

TEST(EvaluationEngine, ParallelIslandsShareTheMemo) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 1;

  // Island-alone hit counts (fresh engine per run, seeds as the islands use
  // them).
  std::size_t fresh_hits = 0;
  for (std::uint64_t i = 0; i < 2; ++i) {
    ExplorationConfig island = cfg;
    island.seed = cfg.seed + i;
    Explorer explorer(cs.spec, cs.augmentation, island);
    fresh_hits += explorer.Run().eval_cache_hits;
  }

  // The shared memo is a superset of every island-local one at all times,
  // so the summed hits can only grow (strict growth is timing-dependent
  // under concurrency; the sequential-sharing test above pins that).
  const auto merged = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  EXPECT_GE(merged.eval_cache_hits, fresh_hits);
  EXPECT_GT(merged.decoder_stats.decodes, 0u);
}

TEST(Stages, DefaultLayoutsMatchBoolApi) {
  auto cs = SmallCaseStudy();
  EvaluationEngine engine(cs.spec, cs.augmentation);
  auto session = engine.NewSession();
  moea::Genotype genotype;
  genotype.priorities.assign(session.GenotypeSize(), 0.5);
  genotype.phases.assign(session.GenotypeSize(), 1);
  const auto evaluated = session.Evaluate(genotype);
  ASSERT_TRUE(evaluated.has_value());

  const Objectives& obj = evaluated->objectives;
  EXPECT_EQ(obj.ToMinimizationVector(DefaultStages(false)),
            obj.ToMinimizationVector(false));
  EXPECT_EQ(obj.ToMinimizationVector(DefaultStages(true)),
            obj.ToMinimizationVector(true));
  EXPECT_EQ(DefaultStages(false).size(), 3u);
  EXPECT_EQ(DefaultStages(true).size(), 4u);

  // The free-function wrapper and the engine agree.
  const auto direct = EvaluateImplementation(cs.spec, cs.augmentation,
                                             evaluated->implementation);
  EXPECT_EQ(direct.ToMinimizationVector(), evaluated->vector);
}

TEST(Stages, EngineDerivesDimensionalityFromStageList) {
  auto cs = SmallCaseStudy();
  EvaluationEngineConfig cfg;
  cfg.stages = DefaultStages(true);
  EvaluationEngine engine(cs.spec, cs.augmentation, cfg);
  EXPECT_EQ(engine.ObjectiveDimensions(), 4u);

  auto session = engine.NewSession();
  moea::Genotype genotype;
  genotype.priorities.assign(session.GenotypeSize(), 0.5);
  genotype.phases.assign(session.GenotypeSize(), 0);
  const auto evaluated = session.Evaluate(genotype);
  ASSERT_TRUE(evaluated.has_value());
  EXPECT_EQ(evaluated->vector.size(), 4u);
}

TEST(Stages, SessionVerdictStagePlugsIn) {
  auto cs = SmallCaseStudy();
  EvaluationEngineConfig cfg;
  cfg.stages = DefaultStages(false);
  cfg.stages.push_back(net::MakeSessionVerdictStage());
  EvaluationEngine engine(cs.spec, cs.augmentation, cfg);
  EXPECT_EQ(engine.ObjectiveDimensions(), 4u);

  auto session = engine.NewSession();
  // No BIST selected -> no sessions -> none can fail.
  moea::Genotype genotype;
  genotype.priorities.assign(session.GenotypeSize(), 0.5);
  genotype.phases.assign(session.GenotypeSize(), 0);
  const auto evaluated = session.Evaluate(genotype);
  ASSERT_TRUE(evaluated.has_value());
  EXPECT_EQ(evaluated->objectives.failed_sessions, 0u);
  ASSERT_EQ(evaluated->vector.size(), 4u);
  EXPECT_EQ(evaluated->vector.back(), 0.0);
}

}  // namespace
}  // namespace bistdse::dse
