#include <gtest/gtest.h>

#include "bist/scan_sim.hpp"
#include "sim/logic_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::bist {
namespace {

/// Abstract full-scan response: LogicSimulator over the combinational core.
sim::BitPattern AbstractResponse(const netlist::Netlist& nl,
                                 const sim::BitPattern& pattern) {
  sim::LogicSimulator simulator(nl);
  std::vector<sim::PatternWord> words(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    words[i] = pattern[i] ? ~sim::PatternWord{0} : 0;
  }
  simulator.Simulate(words);
  sim::BitPattern response(nl.CoreOutputs().size());
  for (std::size_t o = 0; o < response.size(); ++o) {
    response[o] =
        static_cast<std::uint8_t>(simulator.ValueOf(nl.CoreOutputs()[o]) & 1);
  }
  return response;
}

TEST(ScanSim, MatchesFullScanAbstraction) {
  // The bit-level shift/capture emulation must reproduce the abstract
  // pattern semantics exactly — on every circuit, pattern, and chain count
  // (including counts that do not divide the flop count).
  for (std::uint64_t seed : {11, 22, 33}) {
    auto nl = bistdse::testing::MakeSmallRandom(seed, 200);
    util::SplitMix64 rng(seed * 31);
    for (std::uint32_t chains : {1u, 3u, 7u, 8u, 23u}) {
      ScanChainSimulator scan(nl, chains);
      for (int trial = 0; trial < 5; ++trial) {
        sim::BitPattern pattern(nl.CoreInputs().size());
        for (auto& b : pattern) b = rng.Chance(0.5);
        const auto observed = scan.ApplyAndObserve(pattern);
        const auto expected = AbstractResponse(nl, pattern);
        ASSERT_EQ(observed, expected)
            << "seed " << seed << " chains " << chains << " trial " << trial;
      }
    }
  }
}

TEST(ScanSim, BalancedChains) {
  auto nl = bistdse::testing::MakeSmallRandom(41, 150);  // 24 flops
  ScanChainSimulator scan(nl, 4);
  EXPECT_EQ(scan.ChainCount(), 4u);
  EXPECT_EQ(scan.MaxChainLength(), 6u);  // 24 / 4
  EXPECT_EQ(scan.CyclesPerPattern(), 7u);
  // Non-dividing chain count: 24 flops over 7 chains -> lengths 3/4, no
  // empty chain (regression: empty chains crashed the shift loop).
  ScanChainSimulator uneven(nl, 7);
  EXPECT_EQ(uneven.ChainCount(), 7u);
  EXPECT_EQ(uneven.MaxChainLength(), 4u);
}

TEST(ScanSim, MoreChainsThanFlopsClamps) {
  auto nl = bistdse::testing::MakeSmallRandom(43, 120);  // 24 flops
  ScanChainSimulator scan(nl, 100);
  EXPECT_EQ(scan.ChainCount(), 24u);
  EXPECT_EQ(scan.MaxChainLength(), 1u);
  EXPECT_EQ(scan.CyclesPerPattern(), 2u);
}

TEST(ScanSim, CycleAccountingMatchesTimingModel) {
  // CyclesElapsed after N patterns must equal N * CyclesPerPattern — the
  // quantity the session runtime model l(b) is built on (shift-out cycles
  // overlap the next shift-in and are not double counted).
  auto nl = bistdse::testing::MakeSmallRandom(47, 150);
  ScanChainSimulator scan(nl, 4);
  util::SplitMix64 rng(1);
  constexpr int kPatterns = 10;
  for (int i = 0; i < kPatterns; ++i) {
    sim::BitPattern pattern(nl.CoreInputs().size());
    for (auto& b : pattern) b = rng.Chance(0.5);
    scan.ApplyAndObserve(pattern);
  }
  EXPECT_EQ(scan.CyclesElapsed(),
            static_cast<std::uint64_t>(kPatterns) * scan.CyclesPerPattern());
}

TEST(ScanSim, StateRestoreRecoversFunctionalState) {
  auto nl = bistdse::testing::MakeSmallRandom(51, 150);
  ScanChainSimulator scan(nl, 4);
  util::SplitMix64 rng(8);

  // "Functional" state to preserve across the BIST session.
  std::vector<std::uint8_t> saved(nl.Flops().size());
  for (auto& b : saved) b = rng.Chance(0.5);

  // Session scrambles the flops arbitrarily.
  sim::BitPattern pattern(nl.CoreInputs().size());
  for (auto& b : pattern) b = rng.Chance(0.5);
  scan.ApplyAndObserve(pattern);

  const auto cycles_before = scan.CyclesElapsed();
  scan.RestoreState(saved);
  EXPECT_EQ(scan.FlopState(), saved);
  // Restore costs exactly one full shift of the longest chain.
  EXPECT_EQ(scan.CyclesElapsed() - cycles_before, scan.MaxChainLength());
}

TEST(ScanSim, RejectsDegenerateInputs) {
  auto nl = bistdse::testing::MakeSmallRandom(49, 120);
  EXPECT_THROW(ScanChainSimulator(nl, 0), std::invalid_argument);
  ScanChainSimulator scan(nl, 4);
  sim::BitPattern wrong(3, 0);
  EXPECT_THROW(scan.ApplyAndObserve(wrong), std::invalid_argument);
  std::vector<std::uint8_t> wrong_state(3, 0);
  EXPECT_THROW(scan.RestoreState(wrong_state), std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::bist
