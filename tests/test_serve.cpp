// Diagnosis server end-to-end:
//  - wire codecs round-trip queries and rankings bit-exactly and reject
//    malformed buffers,
//  - the full upload -> DiagnoseBatch -> reply path over the simulated bus
//    is bit-identical to calling DiagnoseBatch directly, for every thread
//    count and under injected frame loss / corruption / reordering,
//  - admission is bounded with a per-ECU share,
//  - dictionary hot-reload drains in-flight requests against the old
//    generation with zero drops and rejects wrong-CUT artifacts,
//  - upload failures are attributable from the per-transfer counters.
// The TSan leg runs this suite: ConcurrentReloadWhileServing races Reload()
// against the serving loop.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/versioned_store.hpp"
#include "serve/wire.hpp"
#include "test_helpers.hpp"

namespace bistdse::serve {
namespace {

bist::StumpsConfig ServeStumpsConfig() {
  bist::StumpsConfig config;
  config.signature_window = 16;
  config.prpg_seed = 0x51;
  return config;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : netlist_(bistdse::testing::MakeSmallRandom(71, 220)),
        faults_(sim::CollapsedFaults(netlist_)),
        path_(::testing::TempDir() + "serve_shard.fdict") {
    bist::FaultDictionary dictionary(netlist_, ServeStumpsConfig(), kPatterns,
                                     {}, faults_);
    dictionary.Save(path_);
    bist::StumpsSession session(netlist_, ServeStumpsConfig());
    for (std::size_t fi = 0; fi < faults_.size(); fi += 67) {
      auto result = session.Run(kPatterns, {}, faults_[fi]);
      if (result.fail_data.empty()) continue;
      queries_.push_back({ShardKey(queries_.size() % 2),
                          std::move(result.fail_data)});
    }
  }

  ~ServeTest() override { std::remove(path_.c_str()); }

  static bist::DictShardKey ShardKey(std::size_t i) {
    return {"ecu-" + std::to_string(i), "p1"};
  }

  /// A fresh two-shard store over the saved artifact (each server and each
  /// reload generation owns its own copy).
  bist::DictionaryStore MakeStore() const {
    bist::DictionaryStore store;
    store.AddFromFile(ShardKey(0), path_, /*mapped=*/false);
    store.AddFromFile(ShardKey(1), path_, /*mapped=*/true);
    return store;
  }

  /// The bit-identity reference: direct per-query diagnosis, no bus.
  std::vector<std::vector<bist::DiagnosisCandidate>> Reference(
      std::size_t top_k) const {
    const bist::DictionaryStore store = MakeStore();
    std::vector<std::vector<bist::DiagnosisCandidate>> out;
    for (const bist::DictQuery& q : queries_) {
      out.push_back(store.Find(q.shard)->Diagnose(q.fail_data, top_k));
    }
    return out;
  }

  static void ExpectRankingEq(
      const std::vector<bist::DiagnosisCandidate>& got,
      const std::vector<bist::DiagnosisCandidate>& want,
      const std::string& where) {
    ASSERT_EQ(got.size(), want.size()) << where;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].fault, want[i].fault) << where << " rank " << i;
      // Bit equality, not EXPECT_DOUBLE_EQ: the wire carries the exact
      // IEEE-754 pattern of the score.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].score),
                std::bit_cast<std::uint64_t>(want[i].score))
          << where << " rank " << i;
    }
  }

  static constexpr std::uint64_t kPatterns = 256;
  netlist::Netlist netlist_;
  std::vector<sim::StuckAtFault> faults_;
  std::string path_;
  std::vector<bist::DictQuery> queries_;
};

TEST_F(ServeTest, WireQueryRoundTripIsExact) {
  ASSERT_GE(queries_.size(), 2u);
  for (const bist::DictQuery& query : queries_) {
    const auto bytes = wire::EncodeQuery(query);
    const bist::DictQuery back = wire::DecodeQuery(bytes);
    EXPECT_EQ(back.shard, query.shard);
    ASSERT_EQ(back.fail_data.size(), query.fail_data.size());
    for (std::size_t i = 0; i < back.fail_data.size(); ++i) {
      EXPECT_EQ(back.fail_data[i].window_index,
                query.fail_data[i].window_index);
      EXPECT_EQ(back.fail_data[i].observed_signature,
                query.fail_data[i].observed_signature);
      EXPECT_EQ(back.fail_data[i].expected_signature,
                query.fail_data[i].expected_signature);
    }
  }
}

TEST_F(ServeTest, WireRankingRoundTripIsBitExact) {
  const auto reference = Reference(5);
  for (const auto& ranking : reference) {
    const auto bytes = wire::EncodeRanking(ranking);
    ExpectRankingEq(wire::DecodeRanking(bytes), ranking, "round trip");
  }
}

TEST_F(ServeTest, WireRejectsMalformedBuffers) {
  auto bytes = wire::EncodeQuery(queries_.front());
  // Truncation.
  EXPECT_THROW(wire::DecodeQuery({bytes.data(), bytes.size() - 3}),
               std::runtime_error);
  EXPECT_THROW(wire::DecodeQuery({bytes.data(), std::size_t{4}}),
               std::runtime_error);
  // Bit flip anywhere fails the checksum.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(wire::DecodeQuery(bytes), std::runtime_error);
  bytes[bytes.size() / 2] ^= 0x40;
  // A sealed ranking is not a query (magic mismatch).
  const auto ranking_bytes = wire::EncodeRanking({});
  EXPECT_THROW(wire::DecodeQuery(ranking_bytes), std::runtime_error);
  EXPECT_THROW(wire::DecodeRanking(bytes), std::runtime_error);
}

TEST_F(ServeTest, ServedRankingsBitIdenticalAcrossThreadsAndLoss) {
  ASSERT_GE(queries_.size(), 4u);
  const auto reference = Reference(5);

  struct Schedule {
    const char* name;
    double drop, corrupt, reorder;
  };
  const Schedule schedules[] = {{"clean", 0.0, 0.0, 0.0},
                                {"loss1", 0.01, 0.0, 0.0},
                                {"harsh", 0.05, 0.02, 0.02}};
  for (const Schedule& schedule : schedules) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{0}}) {
      DiagnosisServerConfig config;
      config.threads = threads;
      config.faults.drop_rate = schedule.drop;
      config.faults.corrupt_rate = schedule.corrupt;
      config.faults.reorder_rate = schedule.reorder;
      config.faults.seed = 99;
      DiagnosisServer server(MakeStore(), config);
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        server.Submit(queries_[q], 5.0 * static_cast<double>(q));
      }
      server.Run();
      ASSERT_TRUE(server.AllDone()) << schedule.name;
      const ServerStats& stats = server.Stats();
      EXPECT_EQ(stats.answered, queries_.size()) << schedule.name;
      EXPECT_EQ(stats.rejected_busy, 0u) << schedule.name;
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        const RequestOutcome& outcome = server.Outcome(q);
        ASSERT_EQ(outcome.status, RequestStatus::Answered)
            << schedule.name << " threads " << threads << " query " << q;
        ExpectRankingEq(outcome.ranking, reference[q],
                        std::string(schedule.name) + " threads " +
                            std::to_string(threads) + " query " +
                            std::to_string(q));
      }
      if (schedule.drop > 0.0) {
        // The injector had to be ridden out by retransmissions somewhere.
        std::uint64_t retransmissions = 0;
        for (std::size_t q = 0; q < queries_.size(); ++q) {
          retransmissions += server.Outcome(q).upload.retransmissions +
                             server.Outcome(q).response.retransmissions;
        }
        EXPECT_GT(retransmissions, 0u) << schedule.name;
      }
    }
  }
}

TEST_F(ServeTest, AdmissionIsBoundedWithPerEcuShare) {
  ASSERT_GE(queries_.size(), 4u);
  DiagnosisServerConfig config;
  config.threads = 1;
  config.max_inflight = 2;  // Two ECUs -> per-ECU share of 1.
  DiagnosisServer server(MakeStore(), config);
  // A burst far beyond the bound, all released together: ecu-0 floods,
  // ecu-1 asks once.
  const std::size_t flood = 6;
  for (std::size_t i = 0; i < flood; ++i) {
    bist::DictQuery query = queries_[0];
    query.shard = ShardKey(0);
    server.Submit(std::move(query), 0.0);
  }
  bist::DictQuery other = queries_[1];
  other.shard = ShardKey(1);
  const std::uint64_t other_id = server.Submit(std::move(other), 0.0);
  server.Run();
  ASSERT_TRUE(server.AllDone());

  const ServerStats& stats = server.Stats();
  EXPECT_LE(stats.max_inflight_observed, config.max_inflight);
  // The flooding ECU could not take the whole bound: its share is 1, so
  // exactly one of its burst is admitted and the rest bounce.
  EXPECT_EQ(stats.rejected_busy, flood - 1);
  EXPECT_EQ(stats.answered, 2u);
  // The quiet ECU's request rode its reserved share.
  EXPECT_EQ(server.Outcome(other_id).status, RequestStatus::Answered);
}

TEST_F(ServeTest, HotReloadDrainsInFlightWithZeroDrops) {
  ASSERT_GE(queries_.size(), 4u);
  const auto reference = Reference(5);
  DiagnosisServerConfig config;
  config.threads = 1;
  config.service_time_ms = 4.0;  // Keep a batch in flight across the reload.
  DiagnosisServer server(MakeStore(), config);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    server.Submit(queries_[q], 3.0 * static_cast<double>(q));
  }

  // Serve until roughly half the fleet is answered, then roll over.
  while (server.Stats().answered < queries_.size() / 2) {
    ASSERT_LT(server.NowMs(), 1e7);
    server.Run(server.NowMs() + 10.0);
  }
  EXPECT_EQ(server.Store().Version(), 0u);
  const std::uint32_t version = server.Store().Reload(MakeStore());
  EXPECT_EQ(version, 1u);
  server.Run();
  ASSERT_TRUE(server.AllDone());

  const ServerStats& stats = server.Stats();
  EXPECT_EQ(stats.answered, queries_.size());  // Zero dropped requests.
  EXPECT_EQ(stats.upload_failures + stats.response_failures, 0u);
  std::uint32_t min_gen = 99, max_gen = 0;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const RequestOutcome& outcome = server.Outcome(q);
    ASSERT_EQ(outcome.status, RequestStatus::Answered) << "query " << q;
    min_gen = std::min(min_gen, outcome.generation);
    max_gen = std::max(max_gen, outcome.generation);
    // Both generations serve the same artifact: rankings stay exact.
    ExpectRankingEq(outcome.ranking, reference[q],
                    "query " + std::to_string(q));
  }
  EXPECT_EQ(min_gen, 0u);  // Some requests drained against the old epoch.
  EXPECT_EQ(max_gen, 1u);  // Later ones were served by the new one.
  EXPECT_TRUE(server.Store().PreviousDrained());
}

TEST_F(ServeTest, WrongCutReloadIsRejectedWithoutDisruption) {
  DiagnosisServerConfig config;
  config.threads = 1;
  DiagnosisServer server(MakeStore(), config);
  server.Submit(queries_[0], 0.0);

  // An artifact for a different CUT under the same shard keys.
  const auto other_netlist = bistdse::testing::MakeSmallRandom(72, 220);
  bist::FaultDictionary other(other_netlist, ServeStumpsConfig(), kPatterns,
                              {}, sim::CollapsedFaults(other_netlist));
  bist::DictionaryStore wrong;
  wrong.Add(ShardKey(0), std::move(other));
  EXPECT_THROW(server.Store().Reload(std::move(wrong)),
               std::invalid_argument);
  EXPECT_EQ(server.Store().Version(), 0u);
  EXPECT_EQ(server.Store().ReloadRejects(), 1u);

  // The serving generation is untouched: the request still answers.
  server.Run();
  EXPECT_EQ(server.Stats().answered, 1u);
  ExpectRankingEq(server.Outcome(0).ranking, Reference(5)[0], "post-reject");
}

TEST_F(ServeTest, UploadFailuresAreAttributable) {
  // Heavy loss with a tiny retry budget: uploads must exhaust retries.
  DiagnosisServerConfig config;
  config.threads = 1;
  config.faults.drop_rate = 0.9;
  config.faults.seed = 7;
  config.transport.max_retries = 2;
  net::EventTrace trace;
  DiagnosisServer server(MakeStore(), config, &trace);
  server.Submit(queries_[0], 0.0);
  server.Run();
  ASSERT_TRUE(server.AllDone());

  const RequestOutcome& outcome = server.Outcome(0);
  ASSERT_EQ(outcome.status, RequestStatus::UploadFailed);
  EXPECT_EQ(server.Stats().upload_failures, 1u);
  EXPECT_GT(outcome.upload.dropped, 0u);
  EXPECT_GT(outcome.upload.retransmissions, 0u);
  // The failure reason carries the attribution counters into the trace.
  bool attributed = false;
  for (const net::TraceEvent& event : trace.Events()) {
    if (event.kind == net::TraceEventKind::TransferFailed &&
        event.note.find("retries=") != std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST_F(ServeTest, TransferTimeoutIsCounted) {
  // A deadline far below the frames the payload needs: no loss required.
  DiagnosisServerConfig config;
  config.threads = 1;
  config.transport.timeout_ms = 3.0;
  DiagnosisServer server(MakeStore(), config);
  server.Submit(queries_[0], 0.0);
  server.Run();
  ASSERT_TRUE(server.AllDone());
  const RequestOutcome& outcome = server.Outcome(0);
  ASSERT_EQ(outcome.status, RequestStatus::UploadFailed);
  EXPECT_EQ(outcome.upload.timeouts, 1u);
}

TEST_F(ServeTest, RequestLifecycleRidesTheTrace) {
  DiagnosisServerConfig config;
  config.threads = 1;
  net::EventTrace trace;
  DiagnosisServer server(MakeStore(), config, &trace);
  for (std::size_t q = 0; q < 2 && q < queries_.size(); ++q) {
    server.Submit(queries_[q], 0.0);
  }
  server.Run(40.0);
  server.Store().Reload(MakeStore());
  server.Run();
  ASSERT_TRUE(server.AllDone());

  EXPECT_GT(trace.CountKind(net::TraceEventKind::RequestAdmitted), 0u);
  EXPECT_GT(trace.CountKind(net::TraceEventKind::BatchDispatched), 0u);
  EXPECT_GT(trace.CountKind(net::TraceEventKind::RequestAnswered), 0u);
  EXPECT_EQ(trace.CountKind(net::TraceEventKind::DictReload), 1u);
  // Completed transfers carry the attribution suffix.
  bool attributed = false;
  for (const net::TraceEvent& event : trace.Events()) {
    if (event.kind == net::TraceEventKind::TransferCompleted &&
        event.note.find("retries=") != std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST_F(ServeTest, ConcurrentReloadWhileServing) {
  ASSERT_GE(queries_.size(), 4u);
  const auto reference = Reference(5);
  DiagnosisServerConfig config;
  config.threads = 0;  // Shared-pool fan-out under the race, for TSan.
  DiagnosisServer server(MakeStore(), config);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    server.Submit(queries_[q], 2.0 * static_cast<double>(q));
  }

  // Rollovers from a second thread while the serving loop runs — the
  // signal/watcher-thread shape of a live server.
  std::thread reloader([&] {
    for (int i = 0; i < 3; ++i) {
      server.Store().Reload(MakeStore());
      std::this_thread::yield();
    }
  });
  server.Run();
  reloader.join();
  server.Run();  // Anything admitted while the reloader ran.

  ASSERT_TRUE(server.AllDone());
  EXPECT_EQ(server.Stats().answered, queries_.size());
  EXPECT_EQ(server.Store().Version(), 3u);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    ExpectRankingEq(server.Outcome(q).ranking, reference[q],
                    "query " + std::to_string(q));
  }
  EXPECT_TRUE(server.Store().PreviousDrained());
}

}  // namespace
}  // namespace bistdse::serve
