// Serial-vs-parallel equivalence of the fault-partitioned simulation layer
// plus unit tests of the shared thread pool. Everything parallel in this
// library must be bit-identical to its serial path for any thread count —
// these tests pin that contract at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "bist/diagnosis_eval.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/profile_generator.hpp"
#include "sim/fault_sim.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bistdse {
namespace {

using sim::BitPattern;
using sim::FaultSimulator;
using sim::ParallelFaultSimulator;
using sim::PatternWord;
using sim::StuckAtFault;
using util::ThreadPool;

std::vector<BitPattern> RandomPatterns(std::size_t count, std::size_t width,
                                       std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<BitPattern> patterns(count);
  for (auto& p : patterns) {
    p.resize(width);
    for (auto& b : p) b = rng.Chance(0.5);
  }
  return patterns;
}

// ---------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 4, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  pool.ParallelFor(7, 3, 4, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnceWithBoundedSlots) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kChunks = 8;
  std::vector<std::atomic<int>> visits(kN);
  std::atomic<std::size_t> max_slot{0};
  pool.ParallelFor(0, kN, kChunks,
                   [&](std::size_t begin, std::size_t end, std::size_t slot) {
                     std::size_t seen = max_slot.load();
                     while (slot > seen &&
                            !max_slot.compare_exchange_weak(seen, slot)) {
                     }
                     for (std::size_t i = begin; i < end; ++i) ++visits[i];
                   });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
  EXPECT_LT(max_slot.load(), kChunks);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 8,
                       [&](std::size_t begin, std::size_t, std::size_t) {
                         if (begin >= 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing loop and run the next one normally.
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(0, 100, 8,
                   [&](std::size_t begin, std::size_t end, std::size_t) {
                     for (std::size_t i = begin; i < end; ++i) sum += i;
                   });
  EXPECT_EQ(sum.load(), 100u * 99u / 2);
}

TEST(ThreadPool, NestedUseRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(64 * 16);
  pool.ParallelFor(0, 16, 4, [&](std::size_t ob, std::size_t oe, std::size_t) {
    for (std::size_t o = ob; o < oe; ++o) {
      // A nested loop on the same pool must not wait for pool workers (they
      // may all be busy with outer chunks) — it degrades to inline execution.
      pool.ParallelFor(0, 64, 4,
                       [&](std::size_t ib, std::size_t ie, std::size_t) {
                         for (std::size_t i = ib; i < ie; ++i) {
                           ++visits[o * 64 + i];
                         }
                       });
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleChunkRunsOnCaller) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(0, 10, 1, [&](std::size_t, std::size_t, std::size_t slot) {
    executed = std::this_thread::get_id();
    EXPECT_EQ(slot, 0u);
  });
  EXPECT_EQ(executed, caller);
}

// ---------------------------------------------------------------------------
// Worker clones.

TEST(ParallelFaultSim, WorkerCloneMatchesParent) {
  auto nl = bistdse::testing::MakeSmallRandom(11, 200);
  FaultSimulator parent(nl);
  FaultSimulator clone = FaultSimulator::WorkerClone(parent);

  util::SplitMix64 rng(42);
  std::vector<PatternWord> words(nl.CoreInputs().size());
  for (auto& w : words) w = rng();
  parent.SetPatternBlock(words);

  for (const StuckAtFault& f : sim::CollapsedFaults(nl)) {
    ASSERT_EQ(clone.DetectWord(f), parent.DetectWord(f)) << ToString(nl, f);
    ASSERT_EQ(clone.FaultyResponse(f), parent.FaultyResponse(f));
  }
}

TEST(ParallelFaultSim, CloneSeesParentsLatestBlock) {
  auto nl = bistdse::testing::MakeSmallRandom(12, 150);
  FaultSimulator parent(nl);
  FaultSimulator clone = FaultSimulator::WorkerClone(parent);
  const auto faults = sim::CollapsedFaults(nl);

  util::SplitMix64 rng(43);
  for (int block = 0; block < 3; ++block) {
    std::vector<PatternWord> words(nl.CoreInputs().size());
    for (auto& w : words) w = rng();
    parent.SetPatternBlock(words);
    ASSERT_EQ(clone.DetectWord(faults[block]), parent.DetectWord(faults[block]));
  }
}

TEST(ParallelFaultSim, SetPatternBlockOnCloneThrows) {
  auto nl = bistdse::testing::MakeSmallRandom(13, 100);
  FaultSimulator parent(nl);
  FaultSimulator clone = FaultSimulator::WorkerClone(parent);
  std::vector<PatternWord> words(nl.CoreInputs().size(), 0);
  EXPECT_THROW(clone.SetPatternBlock(words), std::logic_error);
}

// ---------------------------------------------------------------------------
// Parallel sweeps are bit-identical to serial.

TEST(ParallelFaultSim, DetectWordsMatchSerialSweep) {
  auto nl = bistdse::testing::MakeSmallRandom(14, 300);
  const auto faults = sim::CollapsedFaults(nl);
  util::SplitMix64 rng(44);
  std::vector<PatternWord> words(nl.CoreInputs().size());
  for (auto& w : words) w = rng();

  FaultSimulator serial(nl);
  serial.SetPatternBlock(words);
  std::vector<PatternWord> expected(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expected[i] = serial.DetectWord(faults[i]);
  }

  ThreadPool pool(4);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ParallelFaultSimulator fsim(nl, threads, &pool);
    fsim.SetPatternBlock(words);
    std::vector<PatternWord> detect(faults.size(), 0);
    fsim.DetectWords(faults, detect);
    EXPECT_EQ(detect, expected) << threads << " threads";
  }
}

TEST(ParallelFaultSim, CountDetectedFaultsMatchesSerial) {
  auto nl = bistdse::testing::MakeSmallRandom(15, 250);
  const auto faults = sim::CollapsedFaults(nl);
  const auto patterns = RandomPatterns(130, nl.CoreInputs().size(), 45);

  const std::size_t expected = sim::CountDetectedFaults(nl, patterns, faults);
  EXPECT_GT(expected, 0u);
  for (std::size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(sim::ParallelCountDetectedFaults(nl, patterns, faults, threads),
              expected)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Profile generation.

bist::ProfileGeneratorConfig SmallProfileConfig() {
  bist::ProfileGeneratorConfig config;
  config.prp_counts = {64, 256};
  config.coverage_targets_percent = {100.0, 95.0};
  config.fill_seeds = {11, 11};
  config.stumps.num_scan_chains = 8;
  config.stumps.max_chain_length = 16;
  return config;
}

void ExpectSameProfiles(const std::vector<bist::BistProfile>& a,
                        const std::vector<bist::BistProfile>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].profile_number, b[i].profile_number) << label;
    EXPECT_EQ(a[i].num_random_patterns, b[i].num_random_patterns) << label;
    EXPECT_EQ(a[i].num_deterministic_patterns, b[i].num_deterministic_patterns)
        << label << " profile " << i;
    EXPECT_EQ(a[i].fault_coverage_percent, b[i].fault_coverage_percent)
        << label << " profile " << i;
    EXPECT_EQ(a[i].runtime_ms, b[i].runtime_ms) << label << " profile " << i;
    EXPECT_EQ(a[i].data_bytes, b[i].data_bytes) << label << " profile " << i;
    EXPECT_EQ(a[i].care_bits, b[i].care_bits) << label << " profile " << i;
  }
}

TEST(ParallelProfileGeneration, TablesAreIdenticalAcrossThreadCounts) {
  auto nl = bistdse::testing::MakeSmallRandom(16, 300);
  auto serial_config = SmallProfileConfig();
  serial_config.threads = 1;
  bist::ProfileGenerator serial(nl, serial_config);
  const auto expected = serial.GenerateAll();

  for (std::size_t threads : {2u, 8u, 0u}) {
    auto config = SmallProfileConfig();
    config.threads = threads;
    bist::ProfileGenerator generator(nl, config);
    const auto profiles = generator.GenerateAll();
    ExpectSameProfiles(expected, profiles,
                       "threads=" + std::to_string(threads));
    EXPECT_EQ(bist::FormatProfileTable(expected),
              bist::FormatProfileTable(profiles));
    EXPECT_EQ(serial.Stats().random_detected_at_max_prps,
              generator.Stats().random_detected_at_max_prps);
  }
}

TEST(ParallelProfileGeneration, GenerateOneReusesCachedRandomPhase) {
  auto nl = bistdse::testing::MakeSmallRandom(17, 250);

  // Reference: a dedicated generator whose random phase runs to exactly 64.
  auto single = SmallProfileConfig();
  single.threads = 1;
  single.prp_counts = {64};
  single.coverage_targets_percent = {95.0};
  single.fill_seeds = {23};
  bist::ProfileGenerator reference(nl, single);
  const auto expected = reference.GenerateAll();

  // The parent caches a longer phase (256) and must slice it at 64 without
  // re-running it — bit-identical to the dedicated run.
  auto parent_config = SmallProfileConfig();
  parent_config.threads = 2;
  bist::ProfileGenerator parent(nl, parent_config);
  parent.GenerateAll();  // fills the first_detect_ cache
  const auto one = parent.GenerateOne(64, 95.0, 23);

  ExpectSameProfiles(expected, {one.profile}, "GenerateOne");
  EXPECT_EQ(one.profile.num_deterministic_patterns,
            one.encoded_patterns.size());
}

TEST(ParallelProfileGeneration, GenerateOneBeyondCachedMaxStillWorks) {
  auto nl = bistdse::testing::MakeSmallRandom(18, 200);
  auto config = SmallProfileConfig();
  config.threads = 1;
  bist::ProfileGenerator generator(nl, config);
  // 512 exceeds the configured maximum of 256: the fallback path runs a
  // fresh, longer random phase.
  const auto one = generator.GenerateOne(512, 95.0, 7);
  EXPECT_EQ(one.profile.num_random_patterns, 512u);
  EXPECT_GT(one.profile.fault_coverage_percent, 0.0);
}

// ---------------------------------------------------------------------------
// Fault dictionary and diagnosis evaluation.

TEST(ParallelFaultDictionary, IdenticalAcrossThreadCounts) {
  auto nl = bistdse::testing::MakeSmallRandom(19, 200);
  bist::StumpsConfig config;
  config.num_scan_chains = 8;
  config.max_chain_length = 16;
  config.signature_window = 16;
  auto faults = sim::CollapsedFaults(nl);
  faults.resize(std::min<std::size_t>(faults.size(), 120));

  const bist::FaultDictionary serial(nl, config, 96, {}, faults, 1);
  for (std::size_t threads : {2u, 8u}) {
    const bist::FaultDictionary parallel(nl, config, 96, {}, faults, threads);
    ASSERT_EQ(parallel.FaultCount(), serial.FaultCount());
    ASSERT_EQ(parallel.WindowCount(), serial.WindowCount());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const auto a = serial.WindowsOf(f);
      const auto b = parallel.WindowsOf(f);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "fault " << f << " threads " << threads;
    }
    // A full diagnosis query over the dictionaries must rank identically.
    std::vector<bist::FailDatum> fail_data = {{1, 0xDEAD, 0}, {3, 0xBEEF, 0}};
    const auto ranked_a = serial.Diagnose(fail_data, 10);
    const auto ranked_b = parallel.Diagnose(fail_data, 10);
    ASSERT_EQ(ranked_a.size(), ranked_b.size());
    for (std::size_t i = 0; i < ranked_a.size(); ++i) {
      EXPECT_EQ(ranked_a[i].fault, ranked_b[i].fault);
      EXPECT_EQ(ranked_a[i].score, ranked_b[i].score);
    }
  }
}

TEST(ParallelDiagnosisEval, IdenticalAcrossThreadCounts) {
  auto nl = bistdse::testing::MakeSmallRandom(20, 200);
  bist::StumpsConfig config;
  config.num_scan_chains = 8;
  config.max_chain_length = 16;
  config.signature_window = 16;

  bist::DiagnosisEvalOptions options;
  options.num_random_patterns = 64;
  options.max_samples = 12;
  options.sample_stride = 17;

  options.threads = 1;
  const auto serial = bist::EvaluateDiagnosisAccuracy(nl, config, options);
  EXPECT_GT(serial.injected + serial.escaped, 0u);
  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const auto parallel = bist::EvaluateDiagnosisAccuracy(nl, config, options);
    EXPECT_EQ(parallel.injected, serial.injected) << threads;
    EXPECT_EQ(parallel.escaped, serial.escaped) << threads;
    EXPECT_EQ(parallel.top1, serial.top1) << threads;
    EXPECT_EQ(parallel.topk, serial.topk) << threads;
    EXPECT_EQ(parallel.mean_rank, serial.mean_rank) << threads;
  }
}

}  // namespace
}  // namespace bistdse
