#include <gtest/gtest.h>

#include <sstream>

#include "casestudy/casestudy.hpp"
#include "dse/parallel.hpp"
#include "model/spec_io.hpp"

namespace bistdse::dse {
namespace {

casestudy::CaseStudy SmallCaseStudy() {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(4);
  return casestudy::BuildCaseStudy(profiles, 42);
}

TEST(ParallelExplorer, MergesIslandFronts) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 400;
  cfg.population_size = 20;
  cfg.seed = 1;
  const auto merged = ExploreParallel(cs.spec, cs.augmentation, cfg, 3);
  EXPECT_EQ(merged.evaluations, 3u * 400u);
  EXPECT_EQ(merged.island_front_sizes.size(), 3u);
  ASSERT_GT(merged.pareto.size(), 3u);
  // Merged front is internally non-dominated.
  for (std::size_t i = 0; i < merged.pareto.size(); ++i) {
    for (std::size_t j = 0; j < merged.pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          moea::Dominates(merged.pareto[i].objectives.ToMinimizationVector(),
                          merged.pareto[j].objectives.ToMinimizationVector()));
    }
  }
}

TEST(ParallelExplorer, DeterministicAcrossRuns) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 250;
  cfg.population_size = 16;
  cfg.seed = 5;
  const auto a = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  const auto b = ExploreParallel(cs.spec, cs.augmentation, cfg, 2);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives.ToMinimizationVector(),
              b.pareto[i].objectives.ToMinimizationVector());
  }
}

TEST(ParallelExplorer, MoreIslandsNeverShrinkCoverage) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 300;
  cfg.population_size = 16;
  cfg.seed = 2;
  const auto one = ExploreParallel(cs.spec, cs.augmentation, cfg, 1);
  const auto four = ExploreParallel(cs.spec, cs.augmentation, cfg, 4);
  // Island 1 of `four` equals `one`; the merge can only add non-dominated
  // points or evict dominated ones, so every `four` point is at least as
  // good as something in `one` (weak sanity: front not smaller than half).
  EXPECT_GE(four.pareto.size() + 2, one.pareto.size() / 2);
  EXPECT_EQ(four.evaluations, 4u * 300u);
}

TEST(ImplementationIo, RoundTripsBinding) {
  auto cs = SmallCaseStudy();
  ExplorationConfig cfg;
  cfg.evaluations = 200;
  cfg.population_size = 16;
  cfg.seed = 3;
  Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  ASSERT_FALSE(result.pareto.empty());
  const auto& original = result.pareto.front().implementation;

  std::ostringstream out;
  model::WriteImplementation(cs.spec, original, out);
  std::istringstream in(out.str());
  const auto loaded = model::ReadImplementation(cs.spec, in);

  // Same binding set (order may differ) and identical objectives.
  auto sorted = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(loaded.binding), sorted(original.binding));
  const auto oa = EvaluateImplementation(cs.spec, cs.augmentation, original);
  const auto ob = EvaluateImplementation(cs.spec, cs.augmentation, loaded);
  EXPECT_EQ(oa.ToMinimizationVector(), ob.ToMinimizationVector());
}

TEST(ImplementationIo, RejectsUnknownNames) {
  auto cs = SmallCaseStudy();
  std::istringstream bad1("bind nope ecu0\n");
  EXPECT_THROW(model::ReadImplementation(cs.spec, bad1), std::runtime_error);
  std::istringstream bad2("bind engine.proc0 gateway\n");
  EXPECT_THROW(model::ReadImplementation(cs.spec, bad2), std::runtime_error);
}

}  // namespace
}  // namespace bistdse::dse
