#include <gtest/gtest.h>

#include <sstream>

#include "dse/exploration.hpp"
#include "model/spec_io.hpp"

namespace bistdse::model {
namespace {

const char* kTinySpec = R"(
# two ECUs, one bus, sensor -> ctrl -> actuator
resource gw gateway 20 1e-6
resource can0 bus 1 0 500000
resource ecu1 ecu 10 2e-5
resource ecu2 ecu 14 2e-5
resource s0 sensor 2 0
resource a0 actuator 3 0
link gw can0
link ecu1 can0
link ecu2 can0
link s0 can0
link a0 can0

task sense
task ctrl
task act
message speed sense ctrl 2 10
message torque ctrl act 4 20
mapping sense s0
mapping ctrl ecu1
mapping ctrl ecu2
mapping act a0

profile ecu1 1 500 99.8 4.9 2400000
profile ecu1 2 500 95.7 1.7 455000
profile ecu2 1 500 99.8 4.9 2400000
cuttype ecu2 1
)";

TEST(SpecIo, ParsesTinySpec) {
  auto parsed = ParseSpecString(kTinySpec);
  EXPECT_EQ(parsed.spec.Architecture().ResourceCount(), 6u);
  EXPECT_EQ(parsed.spec.Application().TaskCount(), 3u);
  EXPECT_EQ(parsed.spec.Application().MessageCount(), 2u);
  EXPECT_EQ(parsed.spec.Mappings().size(), 4u);
  EXPECT_EQ(parsed.profiles.size(), 2u);
  EXPECT_EQ(parsed.cut_types.size(), 1u);

  const auto augmentation = parsed.Augment();
  EXPECT_EQ(augmentation.programs_by_ecu.size(), 2u);
  // ecu1: 2 profiles, ecu2: 1 profile with cut type 1.
  const auto ecu2 = parsed.spec.Architecture().ResourceCount() - 4;  // "ecu2"
  (void)ecu2;
  std::size_t total_programs = 0;
  bool saw_type1 = false;
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    total_programs += programs.size();
    for (const auto& p : programs) saw_type1 |= p.cut_type == 1;
  }
  EXPECT_EQ(total_programs, 3u);
  EXPECT_TRUE(saw_type1);
}

TEST(SpecIo, ParsedSpecIsExplorable) {
  auto parsed = ParseSpecString(kTinySpec);
  const auto augmentation = parsed.Augment();
  dse::ExplorationConfig cfg;
  cfg.evaluations = 200;
  cfg.population_size = 12;
  cfg.seed = 2;
  cfg.validate_each_decode = true;
  dse::Explorer explorer(parsed.spec, augmentation, cfg);
  const auto result = explorer.Run();
  EXPECT_GT(result.pareto.size(), 1u);
}

TEST(SpecIo, RoundTrip) {
  auto parsed = ParseSpecString(kTinySpec);
  std::ostringstream out;
  WriteSpec(parsed.spec, parsed.profiles, parsed.cut_types, out);
  auto reparsed = ParseSpecString(out.str());
  EXPECT_EQ(reparsed.spec.Architecture().ResourceCount(),
            parsed.spec.Architecture().ResourceCount());
  EXPECT_EQ(reparsed.spec.Application().TaskCount(),
            parsed.spec.Application().TaskCount());
  EXPECT_EQ(reparsed.spec.Application().MessageCount(),
            parsed.spec.Application().MessageCount());
  EXPECT_EQ(reparsed.spec.Mappings().size(), parsed.spec.Mappings().size());
  EXPECT_EQ(reparsed.profiles.size(), parsed.profiles.size());
  EXPECT_EQ(reparsed.cut_types, parsed.cut_types);
}

TEST(SpecIo, ReportsErrorsWithLineNumbers) {
  EXPECT_THROW(ParseSpecString("frobnicate x\n"), std::runtime_error);
  EXPECT_THROW(ParseSpecString("resource x widget 1 0\n"), std::runtime_error);
  EXPECT_THROW(ParseSpecString("link a b\n"), std::runtime_error);
  EXPECT_THROW(ParseSpecString("task t\nmessage m t t 4 10\n"),
               std::runtime_error);
  EXPECT_THROW(ParseSpecString("resource e ecu 1 0\nprofile x 1 500 99 4 100\n"),
               std::runtime_error);
  try {
    ParseSpecString("resource gw gateway 1 0\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecIo, MessageWithMultipleReceivers) {
  auto parsed = ParseSpecString(R"(
resource gw gateway 1 0
resource e1 ecu 1 0
resource can0 bus 1 0 500000
link gw can0
link e1 can0
task a
task b
task c
message m a b,c 8 10
mapping a e1
mapping b e1
mapping c e1
)");
  const auto& m = parsed.spec.Application().GetMessage(0);
  EXPECT_EQ(m.receivers.size(), 2u);
}

}  // namespace
}  // namespace bistdse::model
