#include <gtest/gtest.h>

#include <cmath>

#include "moea/indicators.hpp"
#include "moea/nsga2.hpp"
#include "moea/spea2.hpp"

namespace bistdse::moea {
namespace {

/// Schaffer's problem via a 16-bit genotype decode.
std::optional<ObjectiveVector> Schaffer(const Genotype& g) {
  double x = 0.0;
  for (std::size_t i = 0; i < g.Size(); ++i) {
    if (g.phases[i]) x += 1.0 / static_cast<double>(1ull << (i + 1));
  }
  x = x * 8.0 - 4.0;
  return ObjectiveVector{x * x, (x - 2.0) * (x - 2.0)};
}

TEST(Spea2, ConvergesOnSchafferProblem) {
  Spea2Config cfg;
  cfg.population_size = 40;
  cfg.archive_size = 40;
  cfg.genotype_size = 16;
  cfg.seed = 3;
  Spea2 spea2(cfg);
  const auto result = spea2.Run(Schaffer, 4000);
  EXPECT_EQ(result.evaluations, 4000u);
  ASSERT_GT(result.archive.Size(), 5u);
  for (const auto& e : result.archive.Entries()) {
    const double s = std::sqrt(e.objectives[0]) + std::sqrt(e.objectives[1]);
    EXPECT_NEAR(s, 2.0, 0.3);
  }
}

TEST(Spea2, ComparableHypervolumeToNsga2) {
  const std::size_t evals = 3000;
  Spea2Config sc;
  sc.population_size = 32;
  sc.archive_size = 32;
  sc.genotype_size = 16;
  sc.seed = 7;
  Spea2 spea2(sc);
  const auto spea_result = spea2.Run(Schaffer, evals);

  Nsga2Config nc;
  nc.population_size = 32;
  nc.genotype_size = 16;
  nc.seed = 7;
  Nsga2 nsga2(nc);
  const auto nsga_result = nsga2.Run(Schaffer, evals);

  auto hv = [](const ParetoArchive& archive) {
    std::vector<ObjectiveVector> pts;
    for (const auto& e : archive.Entries()) pts.push_back(e.objectives);
    return Hypervolume(pts, {20.0, 20.0});
  };
  const double spea_hv = hv(spea_result.archive);
  const double nsga_hv = hv(nsga_result.archive);
  // Both algorithms should land within 5 % of each other on this easy
  // problem.
  EXPECT_NEAR(spea_hv, nsga_hv, 0.05 * nsga_hv);
}

TEST(Spea2, DeterministicForFixedSeed) {
  Spea2Config cfg;
  cfg.population_size = 16;
  cfg.archive_size = 16;
  cfg.genotype_size = 10;
  cfg.seed = 5;
  Spea2 a(cfg), b(cfg);
  const auto ra = a.Run(Schaffer, 400);
  const auto rb = b.Run(Schaffer, 400);
  ASSERT_EQ(ra.archive.Size(), rb.archive.Size());
  for (std::size_t i = 0; i < ra.archive.Size(); ++i) {
    EXPECT_EQ(ra.archive.Entries()[i].objectives,
              rb.archive.Entries()[i].objectives);
  }
}

TEST(Spea2, ToleratesInfeasibleEvaluations) {
  Spea2Config cfg;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.genotype_size = 8;
  cfg.seed = 1;
  Spea2 spea2(cfg);
  int calls = 0;
  const auto evaluator =
      [&](const Genotype& g) -> std::optional<ObjectiveVector> {
    ++calls;
    if (calls % 4 == 0) return std::nullopt;
    double ones = 0;
    for (auto p : g.phases) ones += p;
    return ObjectiveVector{ones, 8.0 - ones};
  };
  const auto result = spea2.Run(evaluator, 400);
  EXPECT_EQ(result.evaluations, 400u);
  EXPECT_GE(result.archive.Size(), 1u);
}

TEST(Spea2, RejectsBadConfig) {
  Spea2Config cfg;
  cfg.genotype_size = 0;
  EXPECT_THROW(Spea2{cfg}, std::invalid_argument);
  cfg.genotype_size = 4;
  cfg.archive_size = 1;
  EXPECT_THROW(Spea2{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::moea
