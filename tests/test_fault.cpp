#include <gtest/gtest.h>

#include <set>

#include "sim/fault.hpp"
#include "test_helpers.hpp"

namespace bistdse::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Fault, CollapsedSubsetOfAll) {
  auto nl = testing::MakeC17();
  auto collapsed = CollapsedFaults(nl);
  auto all = AllFaults(nl);
  EXPECT_LT(collapsed.size(), all.size());
  std::set<std::tuple<NodeId, int, bool>> universe;
  for (const auto& f : all) universe.insert({f.node, f.fanin_index, f.stuck_value});
  for (const auto& f : collapsed) {
    EXPECT_TRUE(universe.count({f.node, f.fanin_index, f.stuck_value}))
        << ToString(nl, f);
  }
}

TEST(Fault, C17CollapsedCount) {
  // c17: 11 nodes. Stems: 22. Branch faults: only on fanout branches with
  // the NAND non-controlling polarity (SA1). Fanout > 1 nets: 3 (x2), 11
  // (x2), 16 (x2), 10/19/22/23 have fanout 1 or 0... input 3 feeds NAND10
  // and NAND11; 11 feeds NAND16, NAND19; 16 feeds NAND22, NAND23.
  // Each such pin contributes one SA1 fault: 6 branch faults total.
  auto nl = testing::MakeC17();
  auto collapsed = CollapsedFaults(nl);
  std::size_t stems = 0, branches = 0;
  for (const auto& f : collapsed) {
    if (f.IsStem()) {
      ++stems;
    } else {
      ++branches;
    }
  }
  EXPECT_EQ(stems, 2 * nl.NodeCount());
  EXPECT_EQ(branches, 6u);
  for (const auto& f : collapsed) {
    if (!f.IsStem()) {
      EXPECT_TRUE(f.stuck_value) << "NAND keeps only SA1 pins";
    }
  }
}

TEST(Fault, NoDuplicates) {
  auto nl = bistdse::testing::MakeSmallRandom(11);
  auto collapsed = CollapsedFaults(nl);
  std::set<std::tuple<NodeId, int, bool>> seen;
  for (const auto& f : collapsed) {
    EXPECT_TRUE(seen.insert({f.node, f.fanin_index, f.stuck_value}).second)
        << ToString(nl, f);
  }
}

TEST(Fault, BranchFaultsOnlyOnFanoutStems) {
  auto nl = bistdse::testing::MakeSmallRandom(13);
  auto collapsed = CollapsedFaults(nl);
  for (const auto& f : collapsed) {
    if (f.IsStem()) continue;
    const NodeId driver = nl.FaninsOf(f.node)[f.fanin_index];
    EXPECT_GT(nl.FanoutCount(driver), 1u) << ToString(nl, f);
    const GateType type = nl.TypeOf(f.node);
    const int ctrl = netlist::ControllingValue(type);
    if (ctrl >= 0) {
      // Kept branch faults on controlling-value gates are non-controlling.
      EXPECT_NE(static_cast<int>(f.stuck_value), ctrl) << ToString(nl, f);
    }
    EXPECT_NE(type, GateType::Buf);
    EXPECT_NE(type, GateType::Not);
  }
}

TEST(Fault, ToStringFormats) {
  auto nl = testing::MakeC17();
  StuckAtFault stem{nl.FindByName("22"), -1, true};
  EXPECT_EQ(ToString(nl, stem), "22/SA1");
  StuckAtFault branch{nl.FindByName("16"), 1, true};
  EXPECT_EQ(ToString(nl, branch), "16.in1/SA1");
}

TEST(Fault, CollapseRatioIsPlausible) {
  // Industrial collapsing typically keeps 50-70 % of the uncollapsed
  // universe; our structural rules should land in a similar band.
  auto nl = bistdse::testing::MakeSmallRandom(17, 600);
  const double ratio = static_cast<double>(CollapsedFaults(nl).size()) /
                       static_cast<double>(AllFaults(nl).size());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.8);
}

}  // namespace
}  // namespace bistdse::sim
