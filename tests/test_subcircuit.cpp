#include <gtest/gtest.h>

#include "netlist/subcircuit.hpp"
#include "sim/logic_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::netlist {
namespace {

TEST(Subcircuit, C17ConeOfOutput22) {
  auto nl = testing::MakeC17();
  const auto cone = ExtractFaninCone(nl, nl.FindByName("22"));
  // Cone of 22: gates 22, 10, 16, 11 + inputs 1, 2, 3, 6.
  EXPECT_EQ(cone.circuit.CombinationalGateCount(), 4u);
  EXPECT_EQ(cone.circuit.PrimaryInputs().size(), 4u);
  EXPECT_EQ(cone.circuit.PrimaryOutputs().size(), 1u);
}

TEST(Subcircuit, ConeSimulatesIdenticallyToParent) {
  auto nl = bistdse::testing::MakeSmallRandom(35, 250);
  // Pick a deep node as root.
  NodeId root = nl.TopologicalOrder().back();
  const auto cone = ExtractFaninCone(nl, root);

  util::SplitMix64 rng(4);
  sim::LogicSimulator parent(nl);
  sim::LogicSimulator sub(cone.circuit);

  std::vector<sim::PatternWord> parent_words(nl.CoreInputs().size());
  for (auto& w : parent_words) w = rng();
  parent.Simulate(parent_words);

  // Drive the cone's boundary inputs with the parent's values.
  std::vector<sim::PatternWord> sub_words(cone.circuit.CoreInputs().size());
  for (std::size_t i = 0; i < cone.circuit.CoreInputs().size(); ++i) {
    const NodeId sub_input = cone.circuit.CoreInputs()[i];
    // Find the original node mapped to this input.
    NodeId original = kInvalidNode;
    for (const auto& [from, to] : cone.node_map) {
      if (to == sub_input) {
        original = from;
        break;
      }
    }
    ASSERT_NE(original, kInvalidNode);
    sub_words[i] = parent.ValueOf(original);
  }
  sub.Simulate(sub_words);
  EXPECT_EQ(sub.ValueOf(cone.node_map.at(root)), parent.ValueOf(root));
}

TEST(Subcircuit, RejectsOutOfRange) {
  auto nl = testing::MakeC17();
  EXPECT_THROW(ExtractFaninCone(nl, 9999), std::invalid_argument);
}

}  // namespace
}  // namespace bistdse::netlist
