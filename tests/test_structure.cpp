// Structural shortcut metadata (netlist::StructuralInfo) and the bit-identity
// contract of the shortcut fault-simulation paths: FFR stems, immediate
// post-dominators, and the guarantee that a simulator with structural
// shortcuts enabled produces exactly the same detect words as one running
// full event propagation — for every fault, every lane, every bit.
#include <gtest/gtest.h>

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using netlist::StructuralInfo;
using sim::BitPattern;
using sim::StuckAtFault;
using sim::WideWord;

// Combinational fanouts of `n`: fanouts that are not flops (a Dff fanout
// means `n` is the flop's D net, which is an observation point, not a
// combinational edge).
std::vector<NodeId> CombFanouts(const Netlist& nl, NodeId n) {
  std::vector<NodeId> out;
  for (NodeId f : nl.FanoutsOf(n)) {
    if (nl.TypeOf(f) != GateType::Dff) out.push_back(f);
  }
  return out;
}

void CheckStructuralInvariants(const Netlist& nl) {
  const StructuralInfo& s = nl.Structure();
  ASSERT_EQ(s.NodeCount(), nl.NodeCount());

  std::vector<std::uint8_t> observed(nl.NodeCount(), 0);
  for (NodeId id : nl.CoreOutputs()) observed[id] = 1;

  std::size_t self_stems = 0;
  for (NodeId n = 0; n < nl.NodeCount(); ++n) {
    const auto comb = CombFanouts(nl, n);
    const NodeId stem = s.FfrStemOf(n);

    // Stems are fixed points; non-stem nodes have exactly one combinational
    // fanout and share that fanout's stem.
    EXPECT_EQ(s.FfrStemOf(stem), stem) << "node " << n;
    if (stem == n) {
      ++self_stems;
      EXPECT_NE(comb.size(), 1u) << "node " << n;
    } else {
      ASSERT_EQ(comb.size(), 1u) << "node " << n;
      EXPECT_EQ(s.FfrStemOf(comb[0]), stem) << "node " << n;
    }

    // Observation flags match CoreOutputs(), and an observed node's first
    // common point towards observation is observation itself.
    EXPECT_EQ(s.IsObserved(n), observed[n] != 0) << "node " << n;
    if (s.IsObserved(n)) {
      EXPECT_EQ(s.IPostDomOf(n), StructuralInfo::kExitNode) << "node " << n;
      EXPECT_TRUE(s.ReachesObservation(n));
    }

    // Every post-dominator chain terminates at the virtual EXIT within
    // NodeCount steps, through nodes that themselves reach observation.
    if (s.ReachesObservation(n)) {
      NodeId walk = n;
      std::size_t steps = 0;
      while (walk != StructuralInfo::kExitNode) {
        ASSERT_NE(s.IPostDomOf(walk), netlist::kInvalidNode)
            << "node " << n << " chain node " << walk;
        walk = s.IPostDomOf(walk);
        ASSERT_LE(++steps, nl.NodeCount()) << "node " << n;
      }
    } else {
      // Dead logic: no fanout may reach observation either.
      for (NodeId f : comb) {
        EXPECT_FALSE(s.ReachesObservation(f)) << "node " << n;
      }
    }
  }
  EXPECT_EQ(s.FfrCount(), self_stems);
}

TEST(StructuralInfo, InvariantsHoldOnC17) {
  const auto nl = testing::MakeC17();
  CheckStructuralInvariants(nl);
  // c17 has no dead logic.
  for (NodeId n = 0; n < nl.NodeCount(); ++n) {
    EXPECT_TRUE(nl.Structure().ReachesObservation(n));
  }
}

TEST(StructuralInfo, InvariantsHoldOnSeededRandomNetlists) {
  for (const std::uint64_t seed : {3u, 17u, 59u, 101u}) {
    const auto nl = testing::MakeSmallRandom(seed, 250);
    CheckStructuralInvariants(nl);
  }
}

TEST(StructuralInfo, ChainStemAndDominatorOnHandBuiltCircuit) {
  // a ──▶ n1(NOT) ──▶ n2(NOT) ──▶ g(AND) ──▶ out (observed)
  // b ───────────────────────────▶ g
  // Every node has a single combinational fanout except g (none), so the
  // whole path collapses into one fanout-free region with stem g.
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  const NodeId n1 = nl.AddGate(GateType::Not, {a});
  const NodeId n2 = nl.AddGate(GateType::Not, {n1});
  const NodeId g = nl.AddGate(GateType::And, {n2, b});
  nl.MarkOutput(g);
  nl.Finalize();

  const StructuralInfo& s = nl.Structure();
  // g is observed with no fanout: it is its own stem and exits directly.
  EXPECT_EQ(s.FfrStemOf(g), g);
  EXPECT_EQ(s.IPostDomOf(g), StructuralInfo::kExitNode);
  // The chain nodes collapse onto g.
  EXPECT_EQ(s.FfrStemOf(n1), g);
  EXPECT_EQ(s.FfrStemOf(n2), g);
  EXPECT_EQ(s.IPostDomOf(n1), n2);
  EXPECT_EQ(s.IPostDomOf(n2), g);
  EXPECT_EQ(s.FfrStemOf(a), g);
  EXPECT_EQ(s.FfrStemOf(b), g);
}

TEST(StructuralInfo, ReconvergenceDominatesAtMergeGate) {
  //        ┌─▶ i1(NOT) ─┐
  // a ──▶ s┤            ├─▶ m(AND) ──▶ out
  //        └─▶ i2(NOT) ─┘
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId i1 = nl.AddGate(GateType::Not, {a});
  const NodeId i2 = nl.AddGate(GateType::Buf, {a});
  const NodeId m = nl.AddGate(GateType::And, {i1, i2});
  nl.MarkOutput(m);
  nl.Finalize();

  const StructuralInfo& s = nl.Structure();
  // `a` fans out twice: it is a stem, and both branches reconverge at m.
  EXPECT_EQ(s.FfrStemOf(a), a);
  EXPECT_EQ(s.IPostDomOf(a), m);
  EXPECT_EQ(s.IPostDomOf(i1), m);
  EXPECT_EQ(s.IPostDomOf(i2), m);
}

// ---------------------------------------------------------------------------
// Property: shortcut-enabled simulation is bit-identical to full event
// propagation, for every collapsed fault, across several pattern blocks
// (exercising the per-generation observability cache) and partial tails.

template <std::size_t W>
void ExpectShortcutBitIdentity(std::uint64_t seed, std::uint32_t gates) {
  const auto nl = testing::MakeSmallRandom(seed, gates);
  const std::size_t width = nl.CoreInputs().size();
  const auto faults = sim::CollapsedFaults(nl);
  ASSERT_FALSE(faults.empty());

  sim::FaultSimulatorT<W> with(nl, /*structural_shortcuts=*/true);
  sim::FaultSimulatorT<W> without(nl, /*structural_shortcuts=*/false);
  ASSERT_TRUE(with.StructuralShortcuts());
  ASSERT_FALSE(without.StructuralShortcuts());

  util::SplitMix64 rng(seed * 977 + 5);
  for (int block = 0; block < 3; ++block) {
    // Vary the fill level so partial tail lanes are covered too.
    const std::size_t count = W * 64 - (block * 19) % 47;
    std::vector<BitPattern> patterns(count);
    for (auto& p : patterns) {
      p.resize(width);
      for (auto& bit : p) bit = rng.Chance(0.5);
    }
    const auto words = sim::PackPatternBlockWide(patterns, 0, count, width, W);
    with.SetPatternBlock(words);
    without.SetPatternBlock(words);

    for (std::size_t f = 0; f < faults.size(); ++f) {
      // Raw detect words must agree on all W*64 bit positions, masked or not.
      ASSERT_EQ(with.DetectBlock(faults[f]), without.DetectBlock(faults[f]))
          << "seed " << seed << " block " << block << " fault " << f;
    }
    // Faulty responses always use full propagation; spot-check equality.
    for (std::size_t f = 0; f < faults.size(); f += 13) {
      ASSERT_EQ(with.FaultyResponse(faults[f]),
                without.FaultyResponse(faults[f]))
          << "seed " << seed << " block " << block << " fault " << f;
    }
  }
}

TEST(ShortcutBitIdentity, RandomNetlistsW1) {
  for (const std::uint64_t seed : {33u, 67u}) {
    ExpectShortcutBitIdentity<1>(seed, 220);
  }
}

TEST(ShortcutBitIdentity, RandomNetlistsW4) {
  for (const std::uint64_t seed : {35u, 71u}) {
    ExpectShortcutBitIdentity<4>(seed, 220);
  }
}

TEST(ShortcutBitIdentity, RandomNetlistsW16) {
  for (const std::uint64_t seed : {37u, 73u}) {
    ExpectShortcutBitIdentity<16>(seed, 220);
  }
}

TEST(ShortcutBitIdentity, ExhaustiveOnC17) {
  // 5 inputs: all 32 patterns in one narrow block — exhaustive equality.
  const auto nl = testing::MakeC17();
  const std::size_t width = nl.CoreInputs().size();
  ASSERT_EQ(width, 5u);
  std::vector<BitPattern> patterns(32);
  for (std::size_t p = 0; p < 32; ++p) {
    patterns[p].resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      patterns[p][i] = (p >> i) & 1;
    }
  }
  const auto faults = sim::CollapsedFaults(nl);

  sim::FaultSimulatorT<1> with(nl, true);
  sim::FaultSimulatorT<1> without(nl, false);
  const auto words = sim::PackPatternBlockWide(patterns, 0, 32, width, 1);
  with.SetPatternBlock(words);
  without.SetPatternBlock(words);
  const WideWord<1> mask = sim::BlockMaskWide<1>(32);
  for (const StuckAtFault& f : faults) {
    EXPECT_EQ(with.DetectBlock(f), without.DetectBlock(f));
    // Every testable c17 fault is detected by the exhaustive set.
    EXPECT_TRUE((with.DetectBlock(f) & mask).Any());
  }
}

}  // namespace
}  // namespace bistdse
