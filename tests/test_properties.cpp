// Parameterized property sweeps across seeds and sizes (TEST_P).
#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "atpg/tpg.hpp"
#include <set>

#include "bist/reseeding.hpp"
#include "can/mirroring.hpp"
#include "can/simulator.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "model/implementation.hpp"
#include "netlist/random_circuit.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "util/rng.hpp"

namespace bistdse {
namespace {

// ---------------------------------------------------------------------------
// Property: for every seed, every PODEM cube verified by fault simulation;
// every claimed-untestable fault resists thousands of random patterns.
class PodemSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemSoundness, CubesDetectTheirFaults) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_outputs = 6;
  spec.num_flops = 16;
  spec.num_gates = 180;
  spec.num_hard_blocks = 2;
  spec.hard_block_width = 6;
  spec.seed = GetParam();
  const auto nl = netlist::GenerateRandomCircuit(spec);

  atpg::Podem podem(nl, 300);
  sim::FaultSimulator fsim(nl);
  const auto faults = sim::CollapsedFaults(nl);
  const std::size_t width = nl.CoreInputs().size();

  for (std::size_t fi = 0; fi < faults.size(); fi += 3) {
    const auto result = podem.Generate(faults[fi]);
    if (result.outcome == atpg::PodemOutcome::Detected) {
      std::vector<sim::PatternWord> words(width);
      for (std::size_t i = 0; i < width; ++i) {
        words[i] =
            result.cube.bits[i] == atpg::Value3::One ? ~sim::PatternWord{0} : 0;
      }
      fsim.SetPatternBlock(words);
      EXPECT_NE(fsim.DetectWord(faults[fi]) & 1, 0u)
          << sim::ToString(nl, faults[fi]) << " seed " << GetParam();
    } else if (result.outcome == atpg::PodemOutcome::Untestable) {
      util::SplitMix64 rng(GetParam() ^ 0xabcdef);
      std::vector<sim::PatternWord> words(width);
      for (int block = 0; block < 32; ++block) {
        for (auto& w : words) w = rng();
        fsim.SetPatternBlock(words);
        ASSERT_EQ(fsim.DetectWord(faults[fi]), 0u)
            << sim::ToString(nl, faults[fi]) << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemSoundness,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Property: reseeding expansion honors every care bit across densities.
class ReseedingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReseedingProperty, ExpansionHonorsCareBits) {
  const auto [width, care] = GetParam();
  util::SplitMix64 rng(width * 1000 + care);
  bist::ReseedingEncoder encoder(static_cast<std::uint32_t>(width));
  for (int trial = 0; trial < 10; ++trial) {
    atpg::TestCube cube;
    cube.bits.assign(width, atpg::Value3::X);
    for (int placed = 0; placed < care;) {
      const auto pos = static_cast<std::size_t>(rng.Below(width));
      if (cube.bits[pos] != atpg::Value3::X) continue;
      cube.bits[pos] = rng.Chance(0.5) ? atpg::Value3::One : atpg::Value3::Zero;
      ++placed;
    }
    const auto enc = encoder.Encode(cube);
    ASSERT_TRUE(enc.has_value());
    const auto expanded = encoder.Expand(*enc);
    for (int i = 0; i < width; ++i) {
      if (cube.bits[i] == atpg::Value3::X) continue;
      ASSERT_EQ(expanded[i], cube.bits[i] == atpg::Value3::One ? 1 : 0)
          << "width " << width << " care " << care << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ReseedingProperty,
    ::testing::Combine(::testing::Values(64, 200, 500),
                       ::testing::Values(4, 16, 48)));

// ---------------------------------------------------------------------------
// Property: analytical CAN WCRT bounds dominate simulation for random
// schedulable message sets.
class CanBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanBoundProperty, AnalysisDominatesSimulation) {
  util::SplitMix64 rng(GetParam());
  can::CanBus bus("b", 500e3);
  const int n = 4 + static_cast<int>(rng.Below(8));
  for (int i = 0; i < n; ++i) {
    can::CanMessage m;
    m.id = static_cast<can::CanId>(i * 8);
    m.payload_bytes = static_cast<std::uint32_t>(1 + rng.Below(8));
    const double periods[] = {5, 10, 20, 50, 100};
    m.period_ms = periods[rng.Below(5)];
    m.name = "m" + std::to_string(i);
    bus.AddMessage(m);
  }
  if (!bus.Schedulable()) GTEST_SKIP() << "random set unschedulable";

  can::CanSimulator simulator(bus);
  const auto sim_result = simulator.Run(2000.0);
  for (const auto& [key, stats] : sim_result.per_message) {
    const auto bound = bus.ResponseTime(key.id);
    ASSERT_TRUE(bound.has_value());
    EXPECT_LE(stats.max_response_ms, bound->worst_case_ms + 1e-9)
        << "id " << key.id << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanBoundProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Property (paper §III-B): on random schedulable buses, swapping one ECU's
// message set for its mirrored copies (1) never lets any simulated response
// exceed the analytical WCRT and (2) leaves the observed worst response of
// every non-swapped message bit-identical — mirrored traffic is invisible to
// the rest of the bus.
class MirroredSwapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MirroredSwapProperty, MirroringIsInvisibleAndBounded) {
  util::SplitMix64 rng(GetParam() ^ 0x5eed);
  can::CanBus base("b", 500e3);
  const int n = 4 + static_cast<int>(rng.Below(8));
  for (int i = 0; i < n; ++i) {
    can::CanMessage m;
    m.id = static_cast<can::CanId>(i * 8);  // sparse: room for the +1 mirror
    m.payload_bytes = static_cast<std::uint32_t>(1 + rng.Below(8));
    const double periods[] = {5, 10, 20, 50, 100};
    m.period_ms = periods[rng.Below(5)];
    m.name = "m" + std::to_string(i);
    base.AddMessage(m);
  }
  if (!base.Schedulable()) GTEST_SKIP() << "random set unschedulable";

  // A random non-empty strict subset plays the shut-off ECU's TX set.
  std::vector<can::CanMessage> ecu;
  can::CanBus swapped("b'", 500e3);
  for (const can::CanMessage& m : base.Messages()) {
    if (ecu.size() + 1 < base.Messages().size() && rng.Chance(0.4)) {
      ecu.push_back(m);
    } else {
      swapped.AddMessage(m);
    }
  }
  if (ecu.empty()) GTEST_SKIP() << "empty swap set";
  const auto mirrored = can::MakeMirroredMessages(ecu, 1);
  for (const can::CanMessage& m : mirrored) swapped.AddMessage(m);

  const auto rb = can::CanSimulator(base).Run(2000.0);
  const auto rs = can::CanSimulator(swapped).Run(2000.0);

  // (1) Analysis still dominates simulation on the swapped bus.
  for (const auto& [key, stats] : rs.per_message) {
    const auto bound = swapped.ResponseTime(key.id);
    ASSERT_TRUE(bound.has_value()) << "id " << key.id;
    EXPECT_LE(stats.max_response_ms, bound->worst_case_ms + 1e-9)
        << "id " << key.id << " seed " << GetParam();
  }

  // (2) Non-swapped messages observe exactly the same worst response.
  std::set<can::CanId> swapped_ids;
  for (const can::CanMessage& m : ecu) swapped_ids.insert(m.id);
  for (const auto& [key, stats] : rb.per_message) {
    if (swapped_ids.count(key.id) > 0) continue;
    EXPECT_DOUBLE_EQ(rs.Of(key.id).max_response_ms, stats.max_response_ms)
        << "id " << key.id << " seed " << GetParam();
    EXPECT_EQ(rs.Of(key.id).frames_sent, stats.frames_sent);
  }
  // And each mirror inherits its original's observed worst response.
  for (const can::CanMessage& m : ecu) {
    EXPECT_DOUBLE_EQ(rs.Of(m.id + 1).max_response_ms,
                     rb.Of(m.id).max_response_ms)
        << "mirror of id " << m.id << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MirroredSwapProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Property: every genotype decodes to an implementation satisfying the full
// constraint system (Eqs. 2a-2h, 3a, 3b) across seeds.
class DecoderFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFeasibility, AllDecodesFeasible) {
  auto profiles = casestudy::PaperTableI();
  profiles.resize(3);
  auto cs = casestudy::BuildCaseStudy(profiles, 42);
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const double bias = rng.UnitReal();
    const auto genotype =
        moea::RandomGenotypeBiased(decoder.GenotypeSize(), bias, rng);
    const auto impl = decoder.Decode(genotype);
    ASSERT_TRUE(impl.has_value());
    const auto violations = model::ValidateImplementation(cs.spec, *impl);
    ASSERT_TRUE(violations.empty())
        << violations[0] << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFeasibility,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Property: deterministic TPG coverage is monotone in the pattern prefix.
class TpgMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TpgMonotonicity, PrefixCoverageIsMonotone) {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_outputs = 8;
  spec.num_flops = 12;
  spec.num_gates = 150;
  spec.num_hard_blocks = 1;
  spec.hard_block_width = 5;
  spec.seed = GetParam();
  const auto nl = netlist::GenerateRandomCircuit(spec);
  const auto faults = sim::CollapsedFaults(nl);
  const auto tpg = atpg::GenerateDeterministicPatterns(nl, faults);

  sim::FaultSimulator fsim(nl);
  const std::size_t width = nl.CoreInputs().size();
  std::vector<sim::StuckAtFault> remaining(faults.begin(), faults.end());
  std::size_t covered = 0;
  std::size_t prev_covered = 0;
  for (const auto& p : tpg.patterns) {
    std::vector<sim::PatternWord> words(width);
    for (std::size_t i = 0; i < width; ++i)
      words[i] = p[i] ? ~sim::PatternWord{0} : 0;
    fsim.SetPatternBlock(words);
    std::vector<sim::StuckAtFault> still;
    for (const auto& f : remaining) {
      if (fsim.DetectWord(f)) {
        ++covered;
      } else {
        still.push_back(f);
      }
    }
    remaining = std::move(still);
    EXPECT_GE(covered, prev_covered);
    prev_covered = covered;
  }
  EXPECT_EQ(covered, tpg.detected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpgMonotonicity,
                         ::testing::Values(7, 14, 21));

}  // namespace
}  // namespace bistdse
