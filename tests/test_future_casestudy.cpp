#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/exploration.hpp"
#include "dse/objectives.hpp"
#include "test_helpers.hpp"

namespace bistdse::casestudy {
namespace {

std::vector<bist::BistProfile> SmallSet() {
  auto p = PaperTableI();
  p.resize(3);
  return p;
}

TEST(FutureCaseStudy, BuildsHeterogeneousFleet) {
  const auto cs = BuildFutureCaseStudy(SmallSet(), {}, 43);
  bistdse::testing::ExpectValidTopology(cs);
  EXPECT_EQ(cs.ecus.size(), 20u);
  EXPECT_EQ(cs.sensors.size(), 12u);
  EXPECT_EQ(cs.actuators.size(), 8u);
  EXPECT_EQ(cs.buses.size(), 4u);
  // 6 apps: tasks = 12 sense + 38 proc + 8 act = 58; messages = 58 - 6.
  EXPECT_EQ(cs.functional_task_count, 58u);
  EXPECT_EQ(cs.functional_message_count, 52u);
  // Two CUT generations, ten ECUs each.
  std::size_t gen0 = 0, gen1 = 0;
  for (const auto& [ecu, type] : cs.cut_type_by_ecu) {
    (type == 0 ? gen0 : gen1)++;
  }
  EXPECT_EQ(gen0, 10u);
  EXPECT_EQ(gen1, 10u);
  // Backbone bus is faster.
  EXPECT_GT(cs.spec.Architecture().GetResource(cs.buses[3]).bus_bitrate_bps,
            cs.spec.Architecture().GetResource(cs.buses[0]).bus_bitrate_bps);
}

TEST(FutureCaseStudy, DerivedGen1ProfilesAreScaled) {
  const auto cs = BuildFutureCaseStudy(SmallSet(), {}, 43);
  const auto& app = cs.spec.Application();
  // Find one program per generation with the same profile index and compare
  // the data task sizes.
  const auto& progs0 = cs.augmentation.programs_by_ecu.at(cs.ecus[0]);
  const auto& progs1 = cs.augmentation.programs_by_ecu.at(cs.ecus[19]);
  ASSERT_EQ(progs0.size(), progs1.size());
  EXPECT_EQ(progs0[0].cut_type, 0u);
  EXPECT_EQ(progs1[0].cut_type, 1u);
  EXPECT_EQ(app.GetTask(progs1[0].data_task).data_bytes,
            3 * app.GetTask(progs0[0].data_task).data_bytes);
}

TEST(FutureCaseStudy, GatewaySharingRespectsCutTypes) {
  auto cs = BuildFutureCaseStudy(SmallSet(), {}, 43);
  dse::SatDecoder decoder(cs.spec, cs.augmentation, true);

  // Select profile 0 on one gen-0 ECU and one gen-1 ECU, both at the
  // gateway: two copies must be stored (no cross-type sharing).
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  int selected = 0;
  for (model::ResourceId ecu : {cs.ecus[0], cs.ecus[19]}) {
    const auto& prog = cs.augmentation.programs_by_ecu.at(ecu)[0];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      if (mappings[m].resource == cs.gateway) {
        g.phases[m] = 1;
        g.priorities[m] = 0.8;
      } else {
        g.priorities[m] = 0.1;
      }
    }
    ++selected;
  }
  ASSERT_EQ(selected, 2);
  const auto impl = decoder.Decode(g);
  ASSERT_TRUE(impl.has_value());
  const auto obj = dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  const auto& app = cs.spec.Application();
  const std::uint64_t gen0_bytes = app.GetTask(
      cs.augmentation.programs_by_ecu.at(cs.ecus[0])[0].data_task).data_bytes;
  const std::uint64_t gen1_bytes = app.GetTask(
      cs.augmentation.programs_by_ecu.at(cs.ecus[19])[0].data_task).data_bytes;
  // May include more selections if the decoder was forced to bind others —
  // it is not: only the two programs have phase-true test tasks.
  EXPECT_EQ(obj.ecus_with_bist, 2u);
  EXPECT_EQ(obj.gateway_memory_bytes, gen0_bytes + gen1_bytes);
}

TEST(FutureCaseStudy, SameTypeStillShares) {
  auto cs = BuildFutureCaseStudy(SmallSet(), {}, 43);
  dse::SatDecoder decoder(cs.spec, cs.augmentation, true);
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (model::ResourceId ecu : {cs.ecus[0], cs.ecus[1]}) {  // both gen 0
    const auto& prog = cs.augmentation.programs_by_ecu.at(ecu)[0];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      if (mappings[m].resource == cs.gateway) {
        g.phases[m] = 1;
        g.priorities[m] = 0.8;
      } else {
        g.priorities[m] = 0.1;
      }
    }
  }
  const auto impl = decoder.Decode(g);
  ASSERT_TRUE(impl.has_value());
  const auto obj = dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl);
  const auto& app = cs.spec.Application();
  EXPECT_EQ(obj.ecus_with_bist, 2u);
  EXPECT_EQ(obj.gateway_memory_bytes,
            app.GetTask(cs.augmentation.programs_by_ecu.at(cs.ecus[0])[0]
                            .data_task).data_bytes);
}

TEST(FutureCaseStudy, ExplorationFindsFront) {
  auto cs = BuildFutureCaseStudy(SmallSet(), {}, 43);
  dse::ExplorationConfig cfg;
  cfg.evaluations = 500;
  cfg.population_size = 24;
  cfg.seed = 8;
  cfg.validate_each_decode = true;
  dse::Explorer explorer(cs.spec, cs.augmentation, cfg);
  const auto result = explorer.Run();
  EXPECT_GT(result.pareto.size(), 3u);
  EXPECT_EQ(result.decoder_stats.validation_failures, 0u);
}

}  // namespace
}  // namespace bistdse::casestudy
