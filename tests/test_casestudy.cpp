#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "test_helpers.hpp"

namespace bistdse::casestudy {
namespace {

TEST(TableI, HasAllThirtySixProfiles) {
  const auto profiles = PaperTableI();
  ASSERT_EQ(profiles.size(), 36u);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].profile_number, i + 1);
    EXPECT_GT(profiles[i].fault_coverage_percent, 95.0);
    EXPECT_LE(profiles[i].fault_coverage_percent, 100.0);
    EXPECT_GT(profiles[i].runtime_ms, 0.0);
    EXPECT_GT(profiles[i].data_bytes, 0u);
  }
  // Spot-check rows 1, 4, 33 against the paper.
  EXPECT_EQ(profiles[0].num_random_patterns, 500u);
  EXPECT_DOUBLE_EQ(profiles[0].fault_coverage_percent, 99.83);
  EXPECT_EQ(profiles[0].data_bytes, 2399185u);
  EXPECT_EQ(profiles[3].data_bytes, 455061u);
  EXPECT_DOUBLE_EQ(profiles[32].runtime_ms, 965.35);
}

TEST(TableI, RuntimeTracksPatternCount) {
  const auto profiles = PaperTableI();
  // Within each PRP group runtimes are close; across groups they grow.
  for (int g = 0; g + 1 < 9; ++g) {
    EXPECT_LT(profiles[4 * g].runtime_ms, profiles[4 * (g + 1)].runtime_ms);
  }
}

TEST(TableI, MaxCoverageVariantsNeedMostData) {
  const auto profiles = PaperTableI();
  for (int g = 0; g < 9; ++g) {
    // Variants 1/2 are max coverage, 3 is 98 %, 4 is 95 %.
    EXPECT_GT(profiles[4 * g].data_bytes, profiles[4 * g + 2].data_bytes);
    EXPECT_GT(profiles[4 * g + 2].data_bytes, profiles[4 * g + 3].data_bytes);
  }
}

TEST(CaseStudyBuilder, MatchesPaperCounts) {
  const auto cs = BuildCaseStudy();
  EXPECT_EQ(cs.functional_task_count, 45u);
  EXPECT_EQ(cs.functional_message_count, 41u);
  EXPECT_EQ(cs.ecus.size(), 15u);
  EXPECT_EQ(cs.sensors.size(), 9u);
  EXPECT_EQ(cs.actuators.size(), 5u);
  EXPECT_EQ(cs.buses.size(), 3u);
  EXPECT_EQ(cs.augmentation.programs_by_ecu.size(), 15u);
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    EXPECT_EQ(programs.size(), 36u);
  }
  // Total tasks: 45 functional + 1 b^R + 15*36 b^T + 15*36 b^D.
  EXPECT_EQ(cs.spec.Application().TaskCount(), 45u + 1u + 2u * 15u * 36u);
  // Total messages: 41 functional + 15*36 c^D + 15*36 c^R.
  EXPECT_EQ(cs.spec.Application().MessageCount(), 41u + 2u * 15u * 36u);
}

TEST(CaseStudyBuilder, DeterministicForSeed) {
  const auto a = BuildCaseStudy(PaperTableI(), 42);
  const auto b = BuildCaseStudy(PaperTableI(), 42);
  ASSERT_EQ(a.spec.Mappings().size(), b.spec.Mappings().size());
  for (std::size_t i = 0; i < a.spec.Mappings().size(); ++i) {
    EXPECT_EQ(a.spec.Mappings()[i].task, b.spec.Mappings()[i].task);
    EXPECT_EQ(a.spec.Mappings()[i].resource, b.spec.Mappings()[i].resource);
  }
}

TEST(CaseStudyBuilder, TopologyIsStructurallyValid) {
  // Shared validity checks, the same ones generated corpus members satisfy.
  bistdse::testing::ExpectValidTopology(BuildCaseStudy());
}

TEST(CaseStudyBuilder, PaperStumpsTiming) {
  const auto cfg = PaperStumpsConfig();
  EXPECT_EQ(cfg.num_scan_chains, 100u);
  EXPECT_EQ(cfg.max_chain_length, 77u);
  EXPECT_DOUBLE_EQ(cfg.test_frequency_hz, 40e6);
}

TEST(CaseStudyBuilder, BaselineCostIsFinitePositive) {
  const double cost = BaselineCost();
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1e4);
}

}  // namespace
}  // namespace bistdse::casestudy
