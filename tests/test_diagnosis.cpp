#include <gtest/gtest.h>

#include "bist/diagnosis.hpp"
#include "sim/fault.hpp"
#include "test_helpers.hpp"

namespace bistdse::bist {
namespace {

using sim::CollapsedFaults;
using sim::StuckAtFault;

StumpsConfig DiagConfig() {
  StumpsConfig cfg;
  cfg.signature_window = 8;  // fine-grained windows: more diagnostic info
  cfg.prpg_seed = 0x1234;
  return cfg;
}

TEST(Diagnosis, InjectedFaultRanksFirst) {
  auto nl = bistdse::testing::MakeSmallRandom(61, 250);
  const auto cfg = DiagConfig();
  StumpsSession session(nl, cfg);
  const auto faults = CollapsedFaults(nl);

  SignatureDiagnosis diag(nl, cfg, 512, {});
  std::size_t attempted = 0, top1 = 0, top5 = 0;
  for (std::size_t fi = 0; fi < faults.size(); fi += 97) {
    const auto result = session.Run(512, {}, faults[fi]);
    if (result.fail_data.empty()) continue;  // not detected by this session
    ++attempted;
    const auto ranked = diag.Diagnose(result.fail_data, faults, 5);
    ASSERT_FALSE(ranked.empty());
    // The true fault must score a perfect match (prediction == observation,
    // no aliasing expected at 32-bit signatures).
    bool in_top1 = ranked[0].fault == faults[fi] ||
                   (ranked.size() > 1 && ranked[0].score == ranked[1].score);
    bool in_top5 = false;
    for (const auto& c : ranked) in_top5 |= c.fault == faults[fi];
    top1 += in_top1;
    top5 += in_top5;
  }
  ASSERT_GT(attempted, 3u);
  // Equivalent faults can tie, but the injected fault must virtually always
  // appear among the top candidates.
  EXPECT_GE(top5 * 10, attempted * 8) << top5 << "/" << attempted;
  EXPECT_GE(top1 * 10, attempted * 7);
}

TEST(Diagnosis, PerfectScoreForTrueFault) {
  auto nl = bistdse::testing::MakeSmallRandom(63, 200);
  const auto cfg = DiagConfig();
  StumpsSession session(nl, cfg);
  const auto faults = CollapsedFaults(nl);
  const StuckAtFault fault = faults[3];

  const auto result = session.Run(256, {}, fault);
  if (result.fail_data.empty()) GTEST_SKIP() << "fault escapes this session";

  SignatureDiagnosis diag(nl, cfg, 256, {});
  const auto ranked = diag.Diagnose(result.fail_data, {&fault, 1}, 1);
  ASSERT_EQ(ranked.size(), 1u);
  // Perfect window-set match (1.0) plus perfect signature reproduction (1.0).
  EXPECT_DOUBLE_EQ(ranked[0].score, 2.0);
}

TEST(Diagnosis, NoFailDataGivesZeroScores) {
  auto nl = bistdse::testing::MakeSmallRandom(65, 150);
  const auto cfg = DiagConfig();
  SignatureDiagnosis diag(nl, cfg, 64, {});
  const auto faults = CollapsedFaults(nl);
  const auto ranked = diag.Diagnose({}, faults, 3);
  ASSERT_EQ(ranked.size(), 3u);
  for (const auto& c : ranked) {
    EXPECT_EQ(c.score, 0.0);
  }
}

TEST(Diagnosis, WindowCount) {
  auto nl = bistdse::testing::MakeSmallRandom(67, 100);
  StumpsConfig cfg = DiagConfig();
  SignatureDiagnosis diag(nl, cfg, 20, {});
  EXPECT_EQ(diag.WindowCount(), 3u);  // ceil(20/8)
}

}  // namespace
}  // namespace bistdse::bist
