#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bistdse::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(EvalGate, TruthTables) {
  const PatternWord a = 0b1100, b = 0b1010;
  const PatternWord ab[] = {a, b};
  EXPECT_EQ(EvalGate(GateType::And, ab) & 0xF, 0b1000u);
  EXPECT_EQ(EvalGate(GateType::Nand, ab) & 0xF, 0b0111u);
  EXPECT_EQ(EvalGate(GateType::Or, ab) & 0xF, 0b1110u);
  EXPECT_EQ(EvalGate(GateType::Nor, ab) & 0xF, 0b0001u);
  EXPECT_EQ(EvalGate(GateType::Xor, ab) & 0xF, 0b0110u);
  EXPECT_EQ(EvalGate(GateType::Xnor, ab) & 0xF, 0b1001u);
  const PatternWord just_a[] = {a};
  EXPECT_EQ(EvalGate(GateType::Buf, just_a) & 0xF, 0b1100u);
  EXPECT_EQ(EvalGate(GateType::Not, just_a) & 0xF, 0b0011u);
}

TEST(EvalGate, WideGates) {
  const PatternWord v[] = {0b1111, 0b1101, 0b1011};
  EXPECT_EQ(EvalGate(GateType::And, v) & 0xF, 0b1001u);
  EXPECT_EQ(EvalGate(GateType::Or, v) & 0xF, 0b1111u);
  EXPECT_EQ(EvalGate(GateType::Xor, v) & 0xF, 0b1001u);
}

TEST(LogicSimulator, FullAdder) {
  Netlist nl;
  const NodeId a = nl.AddInput("a");
  const NodeId b = nl.AddInput("b");
  const NodeId cin = nl.AddInput("cin");
  const NodeId s1 = nl.AddGate(GateType::Xor, {a, b});
  const NodeId sum = nl.AddGate(GateType::Xor, {s1, cin});
  const NodeId c1 = nl.AddGate(GateType::And, {a, b});
  const NodeId c2 = nl.AddGate(GateType::And, {s1, cin});
  const NodeId cout = nl.AddGate(GateType::Or, {c1, c2});
  nl.MarkOutput(sum);
  nl.MarkOutput(cout);
  nl.Finalize();

  LogicSimulator simulator(nl);
  // All 8 combinations in bits 0..7: a = bit pattern, etc.
  const PatternWord wa = 0b10101010, wb = 0b11001100, wc = 0b11110000;
  const PatternWord words[] = {wa, wb, wc};
  simulator.Simulate(words);
  EXPECT_EQ(simulator.ValueOf(sum) & 0xFF, (wa ^ wb ^ wc) & 0xFF);
  EXPECT_EQ(simulator.ValueOf(cout) & 0xFF,
            ((wa & wb) | (wc & (wa ^ wb))) & 0xFF);
}

TEST(LogicSimulator, C17KnownVectors) {
  auto nl = testing::MakeC17();
  LogicSimulator simulator(nl);
  // c17 outputs: 22 = NAND(10,16), 23 = NAND(16,19).
  // Walk all 32 input combinations in one word.
  std::vector<PatternWord> words(5, 0);
  for (int p = 0; p < 32; ++p) {
    for (int i = 0; i < 5; ++i) {
      if ((p >> i) & 1) words[i] |= PatternWord{1} << p;
    }
  }
  simulator.Simulate(words);
  const PatternWord i1 = words[0], i2 = words[1], i3 = words[2], i6 = words[3],
                    i7 = words[4];
  const PatternWord n10 = ~(i1 & i3), n11 = ~(i3 & i6);
  const PatternWord n16 = ~(i2 & n11), n19 = ~(n11 & i7);
  const PatternWord o22 = ~(n10 & n16), o23 = ~(n16 & n19);
  EXPECT_EQ(simulator.ValueOf(nl.FindByName("22")), o22);
  EXPECT_EQ(simulator.ValueOf(nl.FindByName("23")), o23);
}

TEST(LogicSimulator, SequentialCoreView) {
  auto nl = netlist::ParseBenchString(testing::kTinySeq);
  LogicSimulator simulator(nl);
  // Core inputs: a, b, q0, q1. Set a=1, b=1, q0=1, q1=0.
  const PatternWord words[] = {~PatternWord{0}, ~PatternWord{0},
                               ~PatternWord{0}, 0};
  simulator.Simulate(words);
  // d0 = a XOR q1 = 1; d1 = b AND q0 = 1; y = q0 OR q1 = 1.
  EXPECT_EQ(simulator.ValueOf(nl.FindByName("d0")), ~PatternWord{0});
  EXPECT_EQ(simulator.ValueOf(nl.FindByName("d1")), ~PatternWord{0});
  EXPECT_EQ(simulator.ValueOf(nl.FindByName("y")), ~PatternWord{0});
  auto outs = simulator.CoreOutputValues();
  ASSERT_EQ(outs.size(), 3u);
}

TEST(LogicSimulator, RejectsWrongInputCount) {
  auto nl = testing::MakeC17();
  LogicSimulator simulator(nl);
  std::vector<PatternWord> words(3, 0);
  EXPECT_THROW(simulator.Simulate(words), std::invalid_argument);
}

TEST(PatternSet, PackBlockLaysOutBitsPerLane) {
  std::vector<BitPattern> pats = {{1, 0, 1}, {0, 1, 1}};
  auto words = PackPatternBlock(pats, 0, 2, 3);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 0b01u);  // input 0: pattern0=1, pattern1=0
  EXPECT_EQ(words[1], 0b10u);
  EXPECT_EQ(words[2], 0b11u);
}

TEST(PatternSet, BlockMask) {
  EXPECT_EQ(BlockMask(0), 0u);
  EXPECT_EQ(BlockMask(1), 1u);
  EXPECT_EQ(BlockMask(64), ~PatternWord{0});
  EXPECT_EQ(BlockMask(63), ~PatternWord{0} >> 1);
}

// Property: word-parallel simulation agrees with 64 independent single-bit
// simulations on random circuits.
TEST(LogicSimulator, ParallelLanesAreIndependent) {
  auto nl = bistdse::testing::MakeSmallRandom(3);
  LogicSimulator parallel(nl);
  LogicSimulator single(nl);
  util::SplitMix64 rng(99);

  const std::size_t width = nl.CoreInputs().size();
  std::vector<PatternWord> words(width);
  for (auto& w : words) w = rng();
  parallel.Simulate(words);

  for (int lane : {0, 7, 31, 63}) {
    std::vector<PatternWord> bit(width);
    for (std::size_t i = 0; i < width; ++i) {
      bit[i] = (words[i] >> lane) & 1 ? ~PatternWord{0} : 0;
    }
    single.Simulate(bit);
    for (netlist::NodeId id : nl.CoreOutputs()) {
      EXPECT_EQ((parallel.ValueOf(id) >> lane) & 1, single.ValueOf(id) & 1)
          << "lane " << lane << " node " << id;
    }
  }
}

}  // namespace
}  // namespace bistdse::sim
