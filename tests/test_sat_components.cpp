// Component-level tests for the layered SAT core: binary-implication
// propagation, SCC equivalent-literal elimination (with solution
// reconstruction through the representative map), failed-literal probing,
// LBD-driven learned-clause reduction, and the VSIDS activity tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace bistdse::sat {
namespace {

/// Full pinned policy: all variables in `order`, phases from `phase_bits`.
void PinAll(Solver& s, const std::vector<Var>& order,
            const std::vector<std::uint8_t>& phases) {
  s.SetDecisionPolicy(order, phases);
}

TEST(SatComponents, BinaryImplicationChainPropagates) {
  // a -> b -> c -> d as binary clauses; asserting a floods the chain through
  // the dedicated implication graph, not the clause watches.
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
  s.AddClause({NegLit(a), PosLit(b)});
  s.AddClause({NegLit(b), PosLit(c)});
  s.AddClause({NegLit(c), PosLit(d)});
  s.AddClause({PosLit(a)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_TRUE(s.IsTrue(a));
  EXPECT_TRUE(s.IsTrue(b));
  EXPECT_TRUE(s.IsTrue(c));
  EXPECT_TRUE(s.IsTrue(d));
  EXPECT_GT(s.Stats().binary_propagations, 0u);
}

TEST(SatComponents, BinaryInsertionOrderDoesNotChangePinnedModel) {
  // The same binary implication set inserted in reversed order must decode
  // to the identical model under a full pinned policy (the adjacency is
  // rebuilt sorted, and the pinned-order model is canonical).
  util::SplitMix64 rng(31);
  for (int instance = 0; instance < 20; ++instance) {
    constexpr int n = 10;
    std::vector<std::array<Lit, 2>> bins;
    for (int j = 0; j < 18; ++j) {
      const Var u = static_cast<Var>(rng.Below(n));
      const Var v = static_cast<Var>(rng.Below(n));
      bins.push_back({rng.Chance(0.5) ? PosLit(u) : NegLit(u),
                      rng.Chance(0.5) ? PosLit(v) : NegLit(v)});
    }
    std::vector<Var> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.Below(i)]);
    std::vector<std::uint8_t> phases(n);
    for (auto& p : phases) p = rng.Chance(0.5) ? 1 : 0;

    Solver fwd, rev;
    for (int i = 0; i < n; ++i) {
      fwd.NewVar();
      rev.NewVar();
    }
    for (const auto& cl : bins) fwd.AddClause({cl[0], cl[1]});
    for (auto it = bins.rbegin(); it != bins.rend(); ++it)
      rev.AddClause({(*it)[0], (*it)[1]});
    PinAll(fwd, order, phases);
    PinAll(rev, order, phases);
    const auto fr = fwd.Solve();
    ASSERT_EQ(fr, rev.Solve()) << "instance " << instance;
    if (fr != SolveResult::Sat) continue;
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(fwd.IsTrue(static_cast<Var>(v)),
                rev.IsTrue(static_cast<Var>(v)))
          << "instance " << instance << " var " << v;
    }
  }
}

TEST(SatComponents, SccMergesEquivalentLiterals) {
  // a -> b -> c -> a is one strongly connected component: inprocessing (on
  // by default, runs before the first search) collapses it to a single
  // representative, and ValueOf reconstructs the merged variables.
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
  s.AddClause({NegLit(a), PosLit(b)});
  s.AddClause({NegLit(b), PosLit(c)});
  s.AddClause({NegLit(c), PosLit(a)});
  s.AddClause({PosLit(a), PosLit(d)});  // keeps the instance non-trivial
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_GE(s.Stats().inprocess_runs, 1u);
  EXPECT_GE(s.Stats().eliminated_equivalences, 2u);
  EXPECT_EQ(s.IsTrue(a), s.IsTrue(b));
  EXPECT_EQ(s.IsTrue(b), s.IsTrue(c));

  // The merged class must behave as one variable for later constraints too:
  // forcing b forces a and c through the representative.
  s.AddClause({PosLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_TRUE(s.IsTrue(a));
  EXPECT_TRUE(s.IsTrue(c));
}

TEST(SatComponents, SccContradictoryCycleIsUnsat) {
  // x ≡ y and x ≡ ¬y cannot both hold.
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({NegLit(x), PosLit(y)});
  s.AddClause({NegLit(y), PosLit(x)});
  s.AddClause({PosLit(x), PosLit(y)});
  s.AddClause({NegLit(x), NegLit(y)});
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
}

TEST(SatComponents, FailedLiteralProbingAssertsRootFacts) {
  // Probing x propagates x -> a and x -> ~a, a root conflict, so ~x becomes
  // a root fact before any search decision happens.
  Solver s;
  const Var x = s.NewVar(), a = s.NewVar(), other = s.NewVar();
  s.AddClause({NegLit(x), PosLit(a)});
  s.AddClause({NegLit(x), NegLit(a)});
  s.AddClause({PosLit(x), PosLit(other)});
  // Pin x=true first: without the probe the searcher would have to conflict
  // its way out of the decision.
  const std::vector<Var> order = {x, a, other};
  const std::vector<std::uint8_t> phases = {1, 1, 1};
  s.SetDecisionPolicy(order, phases);
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_FALSE(s.IsTrue(x));
  EXPECT_TRUE(s.IsTrue(other));
  EXPECT_GT(s.Stats().probes, 0u);
  EXPECT_GE(s.Stats().probed_literals, 1u);
}

TEST(SatComponents, SubsumptionRemovesAndStrengthensClauses) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.NewVar());
  // (v0 v1 v2) subsumes (v0 v1 v2 v3).
  s.AddClause({PosLit(v[0]), PosLit(v[1]), PosLit(v[2])});
  s.AddClause({PosLit(v[0]), PosLit(v[1]), PosLit(v[2]), PosLit(v[3])});
  // (v4 v5 v6 v7) self-subsumes against (~v4 v5 v6 v7): the resolvent
  // (v5 v6 v7) replaces one of them and then subsumes the other.
  s.AddClause({PosLit(v[4]), PosLit(v[5]), PosLit(v[6]), PosLit(v[7])});
  s.AddClause({NegLit(v[4]), PosLit(v[5]), PosLit(v[6]), PosLit(v[7])});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_GE(s.Stats().subsumed_clauses, 1u);
  EXPECT_GE(s.Stats().strengthened_clauses, 1u);
  // The strengthened instance must still enforce the resolvent.
  s.AddClause({NegLit(v[5])});
  s.AddClause({NegLit(v[6])});
  ASSERT_EQ(s.Solve(), SolveResult::Sat);
  EXPECT_TRUE(s.IsTrue(v[7]));
}

TEST(SatComponents, LbdReductionStaysSound) {
  // Aggressive learned-clause reduction (threshold 8) on pigeonhole 7/6 —
  // enough conflicts for several restarts and reductions — must still prove
  // unsatisfiability.
  SolverConfig config;
  config.inprocess = false;  // isolate the reduction machinery
  config.reduce_min_learned = 8;
  Solver s(config);
  constexpr int P = 7, H = 6;
  Var x[P][H];
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) x[p][h] = s.NewVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> lits;
    for (int h = 0; h < H; ++h) lits.push_back(PosLit(x[p][h]));
    s.AddClause(lits);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.AddClause({NegLit(x[p1][h]), NegLit(x[p2][h])});
  EXPECT_EQ(s.Solve(), SolveResult::Unsat);
  EXPECT_GT(s.Stats().restarts, 0u);
  EXPECT_GT(s.Stats().reduced_clauses, 0u);
}

TEST(SatComponents, AggressiveReductionAgreesWithBruteForce) {
  util::SplitMix64 rng(404);
  SolverConfig config;
  config.reduce_min_learned = 4;
  config.inprocess_conflict_interval = 16;  // inprocess frequently as well
  for (int instance = 0; instance < 25; ++instance) {
    constexpr int n = 11, m = 46;
    std::vector<std::array<Lit, 3>> clauses;
    for (int j = 0; j < m; ++j) {
      std::array<Lit, 3> cl;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.Below(n));
        cl[k] = rng.Chance(0.5) ? PosLit(v) : NegLit(v);
      }
      clauses.push_back(cl);
    }
    bool brute_sat = false;
    for (std::uint32_t a = 0; a < (1u << n) && !brute_sat; ++a) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          const bool val = (a >> VarOf(l)) & 1;
          any |= IsNeg(l) ? !val : val;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    Solver s(config);
    for (int i = 0; i < n; ++i) s.NewVar();
    for (const auto& cl : clauses) s.AddClause({cl[0], cl[1], cl[2]});
    ASSERT_EQ(s.Solve() == SolveResult::Sat, brute_sat)
        << "instance " << instance;
    if (!brute_sat) continue;
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        const bool val = s.IsTrue(VarOf(l));
        any |= IsNeg(l) ? !val : val;
      }
      EXPECT_TRUE(any) << "instance " << instance;
    }
  }
}

TEST(SatComponents, ActivityTailAgreesWithBruteForce) {
  util::SplitMix64 rng(909);
  SolverConfig config;
  config.tail_policy = SolverConfig::TailPolicy::kActivity;
  for (int instance = 0; instance < 25; ++instance) {
    constexpr int n = 11, m = 46;
    std::vector<std::array<Lit, 3>> clauses;
    for (int j = 0; j < m; ++j) {
      std::array<Lit, 3> cl;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.Below(n));
        cl[k] = rng.Chance(0.5) ? PosLit(v) : NegLit(v);
      }
      clauses.push_back(cl);
    }
    bool brute_sat = false;
    for (std::uint32_t a = 0; a < (1u << n) && !brute_sat; ++a) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          const bool val = (a >> VarOf(l)) & 1;
          any |= IsNeg(l) ? !val : val;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    Solver s(config);
    for (int i = 0; i < n; ++i) s.NewVar();
    for (const auto& cl : clauses) s.AddClause({cl[0], cl[1], cl[2]});
    // No pinned policy: every decision flows through the activity heap.
    ASSERT_EQ(s.Solve() == SolveResult::Sat, brute_sat)
        << "instance " << instance;
    if (!brute_sat) continue;
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        const bool val = s.IsTrue(VarOf(l));
        any |= IsNeg(l) ? !val : val;
      }
      EXPECT_TRUE(any) << "instance " << instance;
    }
  }
}

TEST(SatComponents, PinnedModelsMatchAcrossConfigurations) {
  // Canonicity at component level: with every variable pinned, bit-identity
  // mode, the default config, and the activity tail must produce the same
  // model (the tail never fires; transforms preserve the model set).
  util::SplitMix64 rng(555);
  for (int instance = 0; instance < 15; ++instance) {
    constexpr int n = 12, m = 40;
    std::vector<std::array<Lit, 3>> clauses;
    for (int j = 0; j < m; ++j) {
      std::array<Lit, 3> cl;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.Below(n));
        cl[k] = rng.Chance(0.5) ? PosLit(v) : NegLit(v);
      }
      clauses.push_back(cl);
    }
    std::vector<Var> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.Below(i)]);
    std::vector<std::uint8_t> phases(n);
    for (auto& p : phases) p = rng.Chance(0.5) ? 1 : 0;

    SolverConfig activity_config;
    activity_config.tail_policy = SolverConfig::TailPolicy::kActivity;
    Solver bitid(SolverConfig::BitIdentity());
    Solver inproc;
    Solver activity(activity_config);
    for (Solver* s : {&bitid, &inproc, &activity}) {
      for (int i = 0; i < n; ++i) s->NewVar();
      for (const auto& cl : clauses) s->AddClause({cl[0], cl[1], cl[2]});
      PinAll(*s, order, phases);
    }
    const auto r = bitid.Solve();
    ASSERT_EQ(r, inproc.Solve()) << "instance " << instance;
    ASSERT_EQ(r, activity.Solve()) << "instance " << instance;
    if (r != SolveResult::Sat) continue;
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(bitid.IsTrue(static_cast<Var>(v)),
                inproc.IsTrue(static_cast<Var>(v)))
          << "instance " << instance << " var " << v;
      EXPECT_EQ(bitid.IsTrue(static_cast<Var>(v)),
                activity.IsTrue(static_cast<Var>(v)))
          << "instance " << instance << " var " << v;
    }
  }
}

}  // namespace
}  // namespace bistdse::sat
