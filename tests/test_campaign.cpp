// Bit-identity tests of the streaming campaign kernel (sim::CampaignRunner):
// every consumer must produce byte-for-byte the same results for every
// (block_width, threads) combination, and the kernel itself must match a
// hand-written serial reference loop. These tests pin the determinism
// contract that lets the DSE treat parallelism and block width as pure
// throughput knobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bist/campaign_sources.hpp"
#include "bist/diagnosis.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/pattern_source.hpp"
#include "bist/profile_generator.hpp"
#include "bist/stumps.hpp"
#include "sim/campaign.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "test_helpers.hpp"

namespace bistdse {
namespace {

using sim::BitPattern;
using sim::StuckAtFault;

// The width/thread grid every consumer must be invariant over.
struct GridPoint {
  std::size_t width;
  std::size_t threads;
};
const GridPoint kGrid[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1}, {16, 1},
                           {1, 4}, {2, 4}, {4, 4}, {8, 4}, {16, 4}};

std::vector<BitPattern> PrpgPatterns(const netlist::Netlist& netlist,
                                     const bist::StumpsConfig& config,
                                     std::size_t count) {
  bist::PatternSource prpg(config, netlist.CoreInputs().size());
  std::vector<BitPattern> patterns;
  patterns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) patterns.push_back(prpg.Next());
  return patterns;
}

/// Hand-written serial reference: one pattern at a time, faults dropped at
/// their first detection — the loop every legacy campaign used to inline.
std::vector<std::uint64_t> SerialFirstDetect(
    const netlist::Netlist& netlist, std::span<const BitPattern> patterns,
    std::span<const StuckAtFault> faults) {
  const std::size_t width = netlist.CoreInputs().size();
  // The reference deliberately runs without structural shortcuts: full event
  // propagation to the outputs, nothing shared with the shortcut paths.
  sim::FaultSimulatorT<1> fsim(netlist, /*structural_shortcuts=*/false);
  std::vector<std::uint64_t> first_detect(faults.size(), UINT64_MAX);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    fsim.SetPatternBlock(
        sim::PackPatternBlockWide(patterns, p, 1, width, 1));
    const auto mask = sim::BlockMaskWide<1>(1);
    bool any_alive = false;
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (first_detect[f] != UINT64_MAX) continue;
      if ((fsim.DetectBlock(faults[f]) & mask).Any()) {
        first_detect[f] = p;
      } else {
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }
  return first_detect;
}

TEST(CampaignRunner, FirstDetectMatchesSerialReference) {
  const auto netlist = testing::MakeSmallRandom(7, 200);
  const bist::StumpsConfig config;
  const auto patterns = PrpgPatterns(netlist, config, 300);
  const auto faults = sim::CollapsedFaults(netlist);
  const auto reference = SerialFirstDetect(netlist, patterns, faults);

  for (const bool shortcuts : {true, false}) {
    for (const GridPoint& g : kGrid) {
      sim::CampaignRunner runner(netlist,
                                 {.block_width = g.width,
                                  .threads = g.threads,
                                  .structural_shortcuts = shortcuts});
      std::vector<std::uint64_t> first_detect(faults.size(), UINT64_MAX);
      sim::StoredPatternSource source(patterns);
      sim::FirstDetectSink sink(first_detect);
      const auto stats =
          runner.Run(source, sink, {.track = faults, .drop_detected = true});
      EXPECT_EQ(first_detect, reference)
          << "W=" << g.width << " threads=" << g.threads << " shortcuts="
          << shortcuts;
      std::uint64_t detected = 0;
      for (std::uint64_t fd : reference) detected += fd != UINT64_MAX;
      EXPECT_EQ(stats.dropped, detected);
      EXPECT_EQ(stats.survivors, faults.size() - detected);
    }
  }
}

TEST(CampaignRunner, NarrowWarmupDoesNotChangeResults) {
  const auto netlist = testing::MakeSmallRandom(11, 200);
  const bist::StumpsConfig config;
  const auto patterns = PrpgPatterns(netlist, config, 300);
  const auto faults = sim::CollapsedFaults(netlist);
  const auto reference = SerialFirstDetect(netlist, patterns, faults);

  sim::CampaignRunner runner(
      netlist,
      {.block_width = 4, .threads = 2, .narrow_warmup_patterns = 100});
  std::vector<std::uint64_t> first_detect(faults.size(), UINT64_MAX);
  sim::StoredPatternSource source(patterns);
  sim::FirstDetectSink sink(first_detect);
  const auto stats = runner.Run(
      source, sink,
      {.track = faults, .drop_detected = true, .warmup = true});
  EXPECT_EQ(first_detect, reference);
  EXPECT_LE(stats.warmup_patterns, std::uint64_t{100});
}

TEST(CampaignRunner, MaxPatternsAndSinkStopBoundTheRun) {
  const auto netlist = testing::MakeC17();
  const bist::StumpsConfig config;
  const auto patterns = PrpgPatterns(netlist, config, 200);

  sim::CampaignRunner runner(netlist, {.block_width = 2, .threads = 1});
  {
    sim::StoredPatternSource source(patterns);
    const auto stats = runner.Run(source, {.max_patterns = 70});
    EXPECT_EQ(stats.patterns, std::uint64_t{70});
  }
  {
    // A sink returning false after the first block stops the campaign.
    class StopSink final : public sim::CampaignSink {
     public:
      bool OnBlock(sim::CampaignBlock& block) override {
        ++blocks_;
        seen_ += block.Count();
        return false;
      }
      std::size_t blocks_ = 0, seen_ = 0;
    } stop_sink;
    sim::StoredPatternSource source(patterns);
    runner.Run(source, stop_sink);
    EXPECT_EQ(stop_sink.blocks_, std::size_t{1});
    EXPECT_EQ(stop_sink.seen_, std::size_t{2 * 64});
  }
}

TEST(CampaignRunner, CountDetectedFaultsGridInvariant) {
  const auto netlist = testing::MakeSmallRandom(5, 150);
  const bist::StumpsConfig config;
  const auto patterns = PrpgPatterns(netlist, config, 128);
  const auto faults = sim::CollapsedFaults(netlist);

  const std::size_t reference =
      sim::CountDetectedFaults(netlist, patterns, faults);
  for (const GridPoint& g : kGrid) {
    EXPECT_EQ(sim::ParallelCountDetectedFaults(netlist, patterns, faults,
                                               g.threads, g.width),
              reference)
        << "W=" << g.width << " threads=" << g.threads;
  }
}

TEST(CampaignConsumers, ProfileCurvesBitIdentical) {
  const auto netlist = testing::MakeSmallRandom(7, 200);

  auto generate = [&](std::size_t width, std::size_t threads,
                      std::uint64_t warmup, bool shortcuts) {
    bist::ProfileGeneratorConfig config;
    config.prp_counts = {100, 300};
    config.coverage_targets_percent = {100.0, 95.0};
    config.fill_seeds = {11, 11};
    config.threads = threads;
    config.block_width = width;
    config.narrow_warmup_patterns = warmup;
    config.structural_shortcuts = shortcuts;
    bist::ProfileGenerator generator(netlist, config);
    return generator.GenerateAll();
  };

  const auto reference = generate(1, 1, 0, false);
  ASSERT_EQ(reference.size(), 4u);
  for (const bool shortcuts : {true, false}) {
    for (const GridPoint& g : kGrid) {
      const auto profiles = generate(g.width, g.threads, 64, shortcuts);
      ASSERT_EQ(profiles.size(), reference.size());
      for (std::size_t i = 0; i < profiles.size(); ++i) {
        EXPECT_EQ(profiles[i].fault_coverage_percent,
                  reference[i].fault_coverage_percent)
            << "W=" << g.width << " threads=" << g.threads << " shortcuts="
            << shortcuts;
        EXPECT_EQ(profiles[i].num_deterministic_patterns,
                  reference[i].num_deterministic_patterns);
        EXPECT_EQ(profiles[i].data_bytes, reference[i].data_bytes);
        EXPECT_EQ(profiles[i].care_bits, reference[i].care_bits);
      }
    }
  }
}

TEST(CampaignConsumers, StumpsSignaturesBitIdentical) {
  const auto netlist = testing::MakeSmallRandom(9, 200);
  const auto faults = sim::CollapsedFaults(netlist);
  ASSERT_GE(faults.size(), 8u);

  auto run_session = [&](std::size_t width, std::size_t threads,
                         bool shortcuts, const StuckAtFault& fault) {
    bist::StumpsConfig config;
    config.sim_block_width = width;
    config.sim_threads = threads;
    config.structural_shortcuts = shortcuts;
    bist::StumpsSession session(netlist, config);
    return session.Run(256, {}, fault);
  };

  const auto reference = run_session(1, 1, false, faults[3]);
  for (const bool shortcuts : {true, false}) {
    for (const GridPoint& g : kGrid) {
      const auto result = run_session(g.width, g.threads, shortcuts, faults[3]);
      EXPECT_EQ(result.window_signatures, reference.window_signatures)
          << "W=" << g.width << " threads=" << g.threads << " shortcuts="
          << shortcuts;
      ASSERT_EQ(result.fail_data.size(), reference.fail_data.size());
      for (std::size_t i = 0; i < result.fail_data.size(); ++i) {
        EXPECT_EQ(result.fail_data[i].window_index,
                  reference.fail_data[i].window_index);
        EXPECT_EQ(result.fail_data[i].observed_signature,
                  reference.fail_data[i].observed_signature);
      }
    }
  }
}

TEST(CampaignConsumers, RunBatchMatchesSoloRuns) {
  const auto netlist = testing::MakeSmallRandom(13, 200);
  const auto all_faults = sim::CollapsedFaults(netlist);
  std::vector<StuckAtFault> faults;
  for (std::size_t i = 0; i < all_faults.size() && faults.size() < 12;
       i += 5) {
    faults.push_back(all_faults[i]);
  }

  for (const GridPoint& g : kGrid) {
    bist::StumpsConfig config;
    config.sim_block_width = g.width;
    config.sim_threads = g.threads;
    bist::StumpsSession session(netlist, config);
    const auto batch = session.RunBatch(256, {}, faults);
    ASSERT_EQ(batch.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const auto solo = session.Run(256, {}, faults[i]);
      EXPECT_EQ(batch[i].window_signatures, solo.window_signatures)
          << "fault " << i << " W=" << g.width << " threads=" << g.threads;
      EXPECT_EQ(batch[i].pass, solo.pass);
      EXPECT_EQ(batch[i].fail_data.size(), solo.fail_data.size());
    }
  }
}

TEST(CampaignConsumers, DictionaryRowsBitIdentical) {
  const auto netlist = testing::MakeSmallRandom(17, 150);
  const bist::StumpsConfig config;
  auto faults = sim::CollapsedFaults(netlist);
  faults.resize(std::min<std::size_t>(faults.size(), 60));

  const bist::FaultDictionary reference(netlist, config, 192, {}, faults, 1,
                                        1);
  // Fail data of a real faulty session, for ranking equality.
  bist::StumpsConfig session_config = config;
  bist::StumpsSession session(netlist, session_config);
  const auto observed = session.Run(192, {}, faults[1]);
  ASSERT_FALSE(observed.fail_data.empty());
  const auto reference_ranking =
      reference.Diagnose(observed.fail_data, 10);

  for (const GridPoint& g : kGrid) {
    const bist::FaultDictionary dict(netlist, config, 192, {}, faults,
                                     g.threads, g.width);
    ASSERT_EQ(dict.FaultCount(), reference.FaultCount());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const auto rows = dict.WindowsOf(f);
      const auto ref_rows = reference.WindowsOf(f);
      ASSERT_EQ(rows.size(), ref_rows.size());
      for (std::size_t w = 0; w < rows.size(); ++w) {
        EXPECT_EQ(rows[w], ref_rows[w])
            << "fault " << f << " W=" << g.width << " threads=" << g.threads;
      }
    }
    const auto ranking = dict.Diagnose(observed.fail_data, 10);
    ASSERT_EQ(ranking.size(), reference_ranking.size());
    for (std::size_t r = 0; r < ranking.size(); ++r) {
      EXPECT_EQ(ranking[r].fault, reference_ranking[r].fault);
      EXPECT_EQ(ranking[r].score, reference_ranking[r].score);
    }
  }
}

TEST(CampaignConsumers, SignatureDiagnosisBitIdentical) {
  const auto netlist = testing::MakeSmallRandom(21, 150);
  const bist::StumpsConfig config;
  auto faults = sim::CollapsedFaults(netlist);
  faults.resize(std::min<std::size_t>(faults.size(), 60));

  bist::StumpsConfig session_config = config;
  bist::StumpsSession session(netlist, session_config);
  const auto observed = session.Run(192, {}, faults[2]);
  ASSERT_FALSE(observed.fail_data.empty());

  const bist::SignatureDiagnosis reference(netlist, config, 192, {}, 1, 1);
  const auto reference_ranking =
      reference.Diagnose(observed.fail_data, faults, 10);
  ASSERT_FALSE(reference_ranking.empty());
  EXPECT_EQ(reference_ranking.front().fault, faults[2]);

  for (const GridPoint& g : kGrid) {
    const bist::SignatureDiagnosis diagnosis(netlist, config, 192, {},
                                             g.width, g.threads);
    // Two queries through the same instance: cached simulator state must not
    // leak between calls.
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto ranking =
          diagnosis.Diagnose(observed.fail_data, faults, 10);
      ASSERT_EQ(ranking.size(), reference_ranking.size());
      for (std::size_t r = 0; r < ranking.size(); ++r) {
        EXPECT_EQ(ranking[r].fault, reference_ranking[r].fault)
            << "rank " << r << " W=" << g.width << " threads=" << g.threads;
        EXPECT_EQ(ranking[r].score, reference_ranking[r].score);
      }
    }
  }
}

}  // namespace
}  // namespace bistdse
